"""Trace conformance tests over the recorded fixture traces.

``fixtures/traces/ok/tree_session.trace`` is a real recorded session
(see ``fixtures/record_traces.py``); each bad trace is that session
with one protocol obligation removed, so exactly one rule fires.
"""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.trace_rules import (
    analyze_trace_file,
    check_events,
)
from repro.simnet.tracefmt import (
    TraceFormatError,
    dump_trace,
    load_trace,
    parse_trace,
    save_trace,
)

TRACES = Path(__file__).parent / "fixtures" / "traces"


def lint_trace(path):
    collector = DiagnosticCollector()
    analyze_trace_file(path, collector)
    return collector


def codes(collector):
    return sorted({d.code for d in collector})


class TestRoundTrip:
    def test_saved_trace_loads_identically(self, tmp_path):
        events = load_trace(TRACES / "ok" / "tree_session.trace")
        copy = tmp_path / "copy.trace"
        save_trace(events, copy)
        assert load_trace(copy) == events

    def test_dump_parse_round_trip(self):
        events = load_trace(TRACES / "ok" / "tree_session.trace")
        assert parse_trace(dump_trace(events)) == events

    def test_malformed_line_rejected_with_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_trace('{"t": 0, "category": "x", "detail": "d"}\nnope')


class TestRecordedSession:
    def test_good_trace_is_clean(self):
        assert codes(lint_trace(TRACES / "ok" / "tree_session.trace")) == []

    def test_good_trace_covers_every_protocol_category(self):
        events = load_trace(TRACES / "ok" / "tree_session.trace")
        seen = {event.category for event in events}
        assert {
            "transfer", "fault", "write",
            "session-end", "write-back", "invalidate",
            "policy", "policy-decision",
        } <= seen


class TestRecordedCrashSession:
    """``ok/crash_session.trace`` (see ``record_crash_traces.py``): a
    clean two-phase write-back session followed by one a peer crash
    aborts — the fault-tolerance obligations all discharge."""

    def test_good_crash_trace_is_clean(self):
        assert codes(lint_trace(TRACES / "ok" / "crash_session.trace")) == []

    def test_crash_trace_covers_fault_tolerance_categories(self):
        events = load_trace(TRACES / "ok" / "crash_session.trace")
        seen = {event.category for event in events}
        assert {
            "session-abort", "orphan-reaped", "writeback-phase",
        } <= seen
        phases = {
            (event.data or {}).get("phase")
            for event in events
            if event.category == "writeback-phase"
        }
        assert phases == {"prepare", "commit"}


class TestRecordedShmSession:
    """``ok/shm_session.trace`` (see ``record_handover_traces.py``):
    two bulk sessions over the shared-memory carrier, every large
    batch shipped as a zero-copy segment handover."""

    def test_good_shm_trace_is_clean(self):
        assert codes(lint_trace(TRACES / "ok" / "shm_session.trace")) == []

    def test_shm_trace_records_handovers_both_phases(self):
        events = load_trace(TRACES / "ok" / "shm_session.trace")
        handovers = [
            event.data or {}
            for event in events
            if event.category == "segment-handover"
        ]
        assert len(handovers) >= 2
        # The write-back path commits out of the segment: its prepare
        # batch crosses as a handover, not a stream.
        assert any(
            d.get("kind") == "writeback_prepare" for d in handovers
        )
        # Every handover carries the full tuple and causal stamp.
        from repro.analysis.trace_rules import HANDOVER_FIELDS

        for data in handovers:
            assert set(HANDOVER_FIELDS) <= set(data)

    def test_shm_trace_passes_the_sanitizer(self):
        from repro.analysis import sanitizer

        races = DiagnosticCollector()
        sanitizer.analyze_trace_file(
            TRACES / "ok" / "shm_session.trace", races
        )
        assert list(races) == [], [d.render() for d in races]


@pytest.mark.parametrize(
    "trace, code",
    [
        ("empty_piggyback.trace", "SRPC101"),
        ("no_write_back.trace", "SRPC102"),
        ("no_invalidate.trace", "SRPC103"),
        ("no_write_fault.trace", "SRPC104"),
        ("no_session_end.trace", "SRPC105"),
        ("malformed.trace", "SRPC100"),
        ("budget_mismatch.trace", "SRPC300"),
        ("mislabelled_lazy.trace", "SRPC301"),
        ("mislabelled_graphcopy.trace", "SRPC302"),
        ("batch_uncovered_fault.trace", "SRPC310"),
        ("batch_overlapping_prefetch.trace", "SRPC310"),
        ("batch_absorb_unissued.trace", "SRPC310"),
        ("abort_without_reap.trace", "SRPC320"),
        ("commit_without_prepare.trace", "SRPC321"),
        ("activity_after_reap.trace", "SRPC322"),
        ("handover_stale_epoch.trace", "SRPC330"),
        ("handover_epoch_regress.trace", "SRPC330"),
        ("handover_vc_reorder.trace", "SRPC330"),
        ("handover_missing_field.trace", "SRPC330"),
    ],
)
class TestMutatedTraces:
    def test_each_mutant_trips_exactly_its_rule(self, trace, code):
        assert codes(lint_trace(TRACES / "bad" / trace)) == [code]


class TestDroppedInvalidation:
    """The ISSUE's smoke test: removing the invalidation record from a
    recorded session must produce SRPC errors."""

    def test_dropping_invalidation_is_an_error(self):
        events = [
            event
            for event in load_trace(TRACES / "ok" / "tree_session.trace")
            if event.category != "invalidate"
        ]
        collector = DiagnosticCollector()
        check_events(events, collector, filename="mutated.trace")
        assert collector.has_errors
        assert codes(collector) == ["SRPC103"]

    def test_diagnostic_points_at_session_end_line(self):
        events = load_trace(TRACES / "ok" / "tree_session.trace")
        end_index = next(
            i
            for i, event in enumerate(events)
            if event.category == "session-end"
        )
        mutated = [e for e in events if e.category != "invalidate"]
        collector = DiagnosticCollector()
        check_events(mutated, collector, filename="mutated.trace")
        finding = collector.diagnostics[0]
        # The session-end keeps its index: invalidates only follow it.
        assert finding.location.line == end_index + 1
        assert finding.location.file == "mutated.trace"


class TestPipelineConformance:
    """SRPC310: data-batch records against the pipeline discipline."""

    def test_recorded_pipelined_session_is_clean(self):
        trace = TRACES / "ok" / "pipelined_session.trace"
        assert codes(lint_trace(trace)) == []

    def test_recorded_session_exercises_every_batch_kind(self):
        events = load_trace(TRACES / "ok" / "pipelined_session.trace")
        kinds = {
            (event.data or {}).get("kind")
            for event in events
            if event.category == "data-batch"
        }
        assert {"demand", "prefetch", "absorb"} <= kinds

    def test_uncovered_fault_names_the_page(self):
        collector = lint_trace(
            TRACES / "bad" / "batch_uncovered_fault.trace"
        )
        assert collector.has_errors
        finding = collector.diagnostics[0]
        assert "9999" in finding.message

    def test_overlap_names_the_contested_pages(self):
        collector = lint_trace(
            TRACES / "bad" / "batch_overlapping_prefetch.trace"
        )
        assert collector.has_errors
        assert "already covered" in collector.diagnostics[0].message


class TestPolicyConformance:
    """SRPC3xx: recorded decisions against the session's declaration."""

    def _events(self):
        return load_trace(TRACES / "ok" / "tree_session.trace")

    def test_undeclared_trace_skips_policy_rules(self):
        # A pre-policy (or conventional) trace has decisions stripped of
        # their declarations; the SRPC3xx rules make no claim about it.
        events = [e for e in self._events() if e.category != "policy"]
        collector = DiagnosticCollector()
        check_events(events, collector, filename="legacy.trace")
        assert codes(collector) == []

    def test_mislabelled_lazy_trace_is_caught(self):
        # The ISSUE's smoke test: an eager run whose trace declares the
        # lazy policy is flagged — the prefetched bytes betray it.
        collector = lint_trace(TRACES / "bad" / "mislabelled_lazy.trace")
        assert collector.has_errors
        assert codes(collector) == ["SRPC301"]
        finding = collector.diagnostics[0]
        assert "prefetched" in finding.message

    def test_budget_mismatch_names_both_budgets(self):
        collector = lint_trace(TRACES / "bad" / "budget_mismatch.trace")
        finding = collector.diagnostics[0]
        assert finding.code == "SRPC300"
        assert "8192" in finding.message

    def test_graphcopy_declaration_forbids_data_plane(self):
        collector = lint_trace(
            TRACES / "bad" / "mislabelled_graphcopy.trace"
        )
        assert collector.has_errors
        assert set(codes(collector)) == {"SRPC302"}


class TestConventionalTraces:
    def test_no_piggyback_expected_means_no_srpc101(self):
        events = parse_trace(
            '{"t": 0.0, "category": "transfer", "detail": "call", '
            '"data": {"dir": "call", "session": "s", "src": "A", '
            '"dst": "B", "piggyback": null}}\n'
            '{"t": 0.1, "category": "session-end", "detail": "end", '
            '"data": {"session": "s", "participants": [], '
            '"dirty_homes": {}}}\n'
        )
        collector = DiagnosticCollector()
        check_events(events, collector, filename="conv.trace")
        assert codes(collector) == []

    def test_unreadable_file_reports_srpc100(self, tmp_path):
        collector = DiagnosticCollector()
        analyze_trace_file(tmp_path / "absent.trace", collector)
        assert codes(collector) == ["SRPC100"]

    def test_binary_garbage_reports_srpc100(self, tmp_path):
        garbage = tmp_path / "garbage.trace"
        garbage.write_bytes(bytes([0xFC, 0x00, 0xFF, 0x80]) * 16)
        collector = DiagnosticCollector()
        assert analyze_trace_file(garbage, collector) is None
        assert codes(collector) == ["SRPC100"]
