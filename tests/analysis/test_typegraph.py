"""Unit tests for the type graph, including the shapes the IDL parser
cannot produce (embedding cycles, pointers to unknown/non-struct
targets) — these are exactly the SRPC002/SRPC004 failing cases."""

import pytest

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.idl_rules import analyze_document
from repro.analysis.typegraph import TypeGraph
from repro.rpc.idl import IdlDocument, parse_idl
from repro.xdr.arch import SPARC32
from repro.xdr.types import Field, PointerType, StructType, int32


def cyclic_structs():
    """a embeds b embeds a — buildable only programmatically."""
    a = StructType("a", [Field("x", int32)])
    b = StructType("b", [Field("a_copy", a)])
    # Close the cycle behind the constructor's back, the way a
    # hand-built or wire-decoded spec could.
    a.fields = (Field("b_copy", b),)
    a._fields_by_name = {"b_copy": a.fields[0]}
    return {"a": a, "b": b}


class TestEdges:
    def test_pointer_and_embed_edges_kept_separate(self):
        document = parse_idl(
            """
            struct meta { int32 tag; };
            struct node { node *next; meta info; };
            interface i { int32 go(node *n); };
            """
        )
        graph = TypeGraph.from_structs(document.structs)
        assert graph.pointer_targets("node") == {"node"}
        assert graph.embed_edges["node"] == {"meta"}

    def test_reachable_includes_unknown_targets_unexpanded(self):
        graph = TypeGraph()
        graph.add_struct(
            "s", StructType("s", [Field("p", PointerType("mystery"))])
        )
        reached = graph.reachable_from(["s"])
        assert "mystery" in reached
        assert not graph.knows("mystery")


class TestEmbeddingCycles:
    def test_parser_output_is_acyclic(self):
        document = parse_idl(
            """
            struct inner { int32 v; };
            struct outer { inner copy; int32 pad; };
            interface i { int32 go(outer *o); };
            """
        )
        graph = TypeGraph.from_structs(document.structs)
        assert graph.embedding_cycle() is None

    def test_cycle_detected_and_reported(self):
        graph = TypeGraph.from_structs(cyclic_structs())
        cycle = graph.embedding_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_safe_sizeof_refuses_cyclic_types(self):
        graph = TypeGraph.from_structs(cyclic_structs())
        # A naive spec.sizeof would recurse forever here.
        assert graph.safe_sizeof("a", SPARC32) is None
        assert graph.safe_sizeof("b", SPARC32) is None

    def test_safe_sizeof_still_works_off_cycle(self):
        structs = cyclic_structs()
        structs["clean"] = StructType("clean", [Field("v", int32)])
        graph = TypeGraph.from_structs(structs)
        assert graph.safe_sizeof("clean", SPARC32) == 4

    def test_srpc002_fires_on_cyclic_document(self):
        document = IdlDocument(
            structs=cyclic_structs(), interfaces={}, enums={}
        )
        collector = DiagnosticCollector()
        analyze_document(document, collector)
        assert any(d.code == "SRPC002" for d in collector)

    def test_srpc002_silent_on_clean_document(self):
        document = parse_idl(
            """
            struct node { node *next; int32 v; };
            interface i { int32 go(node *n); };
            """
        )
        collector = DiagnosticCollector()
        analyze_document(document, collector)
        assert not any(d.code == "SRPC002" for d in collector)


class TestPointerTargets:
    def test_srpc004_fires_on_unknown_target(self):
        document = IdlDocument(
            structs={
                "s": StructType(
                    "s", [Field("p", PointerType("mystery"))]
                )
            },
            interfaces={},
            enums={},
        )
        collector = DiagnosticCollector()
        analyze_document(document, collector)
        codes = [d.code for d in collector]
        assert "SRPC004" in codes

    def test_srpc004_silent_when_target_known(self):
        document = parse_idl(
            """
            struct node { node *next; int32 v; };
            interface i { int32 go(node *n); };
            """
        )
        collector = DiagnosticCollector()
        analyze_document(document, collector)
        assert not any(d.code == "SRPC004" for d in collector)


class TestProcedureRoots:
    def test_roots_cover_params_returns_and_embedded_pointers(self):
        document = parse_idl(
            """
            struct leaf { int32 v; };
            struct box { leaf *inside; };
            struct node { node *next; box wrapped; };
            interface i {
                leaf *pick(node n);
            };
            """
        )
        graph = TypeGraph.from_structs(document.structs)
        procedure = document.interfaces["i"].procedures[0]
        roots = graph.procedure_roots(procedure)
        # 'leaf' via the return, 'node'/'leaf' via the by-value param's
        # embedded box; the by-value param itself is not a root.
        assert "leaf" in roots
        assert "node" in roots
