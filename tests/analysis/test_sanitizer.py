"""Tests for the coherency sanitizer (SRPC4xx happens-before rules)."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.sanitizer import (
    check_events,
    derive_clocks,
    resolve_clocks,
)
from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import load_trace

FIXTURES = Path(__file__).parent / "fixtures"
RACES_OK = FIXTURES / "races" / "ok"
RACES_BAD = FIXTURES / "races" / "bad"
TRACES_OK = FIXTURES / "traces" / "ok"

#: Every race mutant and the one rule it must raise.
MUTANT_CODES = {
    "concurrent_write.trace": "SRPC400",
    "stale_read.trace": "SRPC401",
    "early_invalidate.trace": "SRPC402",
    "use_after_invalidate.trace": "SRPC403",
    "lost_commit.trace": "SRPC404",
    "late_write.trace": "SRPC404",
    "deadlock_cycle.trace": "SRPC405",
}


def sanitize(events):
    collector = DiagnosticCollector()
    check_events(events, collector)
    return collector


def codes(collector):
    return {d.code for d in collector}


class TestRecordedFixtures:
    def test_good_race_trace_is_clean(self):
        events = load_trace(RACES_OK / "race_session.trace")
        assert codes(sanitize(events)) == set()

    def test_every_recorded_good_trace_is_clean(self):
        for path in sorted(TRACES_OK.glob("*.trace")):
            events = load_trace(path)
            assert codes(sanitize(events)) == set(), path.name

    @pytest.mark.parametrize(
        "name,expected", sorted(MUTANT_CODES.items())
    )
    def test_every_mutant_raises_exactly_its_rule(self, name, expected):
        events = load_trace(RACES_BAD / name)
        assert codes(sanitize(events)) == {expected}

    def test_every_mutant_fixture_is_covered(self):
        recorded = {p.name for p in RACES_BAD.glob("*.trace")}
        assert recorded == set(MUTANT_CODES)

    def test_all_srpc4xx_rules_have_a_mutant(self):
        covered = set(MUTANT_CODES.values())
        assert covered == {
            "SRPC400", "SRPC401", "SRPC402",
            "SRPC403", "SRPC404", "SRPC405",
        }


class TestDerivedClocks:
    """Legacy (unstamped) traces fall back to replay-derived clocks."""

    def strip_stamps(self, events):
        stripped = []
        for event in events:
            if event.data is None:
                stripped.append(event)
                continue
            data = {
                key: value
                for key, value in event.data.items()
                if key not in ("vc", "seq")
            }
            stripped.append(dataclasses.replace(event, data=data))
        return stripped

    def test_unstamped_good_trace_is_still_clean(self):
        events = self.strip_stamps(
            load_trace(RACES_OK / "race_session.trace")
        )
        assert codes(sanitize(events)) == set()

    def test_resolve_prefers_recorded_stamps(self):
        events = load_trace(RACES_OK / "race_session.trace")
        resolved = resolve_clocks(events)
        for event, vc in zip(events, resolved):
            recorded = (event.data or {}).get("vc")
            if recorded is not None:
                assert vc == recorded

    def test_resolve_falls_back_to_derivation(self):
        events = self.strip_stamps(
            load_trace(RACES_OK / "race_session.trace")
        )
        assert resolve_clocks(events) == derive_clocks(events)

    def test_derived_clocks_order_message_delivery(self):
        events = [
            TraceEvent(0.0, "fault", "a", {
                "session": "s", "space": "A", "page": 0,
                "kind": "read", "version": 0,
            }),
            TraceEvent(0.1, "message", "A->B call", {
                "src": "A", "dst": "B", "kind": "call", "size": 1,
            }),
            TraceEvent(0.2, "fault", "b", {
                "session": "s", "space": "B", "page": 0,
                "kind": "read", "version": 0,
            }),
        ]
        first, _, third = derive_clocks(events)
        # B's fault saw A's clock through the delivered message.
        assert third["A"] >= first["A"]
        assert third["B"] > 0


class TestCrashTraces:
    """Crash semantics must not read as races."""

    def test_crash_trace_is_clean(self):
        events = load_trace(TRACES_OK / "crash_session.trace")
        assert codes(sanitize(events)) == set()

    def test_deadlock_skipped_when_session_aborted(self):
        events = load_trace(RACES_BAD / "deadlock_cycle.trace")
        abort = TraceEvent(99.0, "session-abort", "boom", {
            "session": "other", "space": "A",
            "site": "A", "seq": 950, "vc": {"A": 999},
        })
        assert "SRPC405" not in codes(sanitize(events + [abort]))


class TestCli:
    def run(self, capsys, *argv):
        status = main([str(a) for a in argv])
        captured = capsys.readouterr()
        return status, captured.out, captured.err

    def test_race_clean_trace_exits_zero(self, capsys):
        status, out, _ = self.run(
            capsys, "race", RACES_OK / "race_session.trace"
        )
        assert status == 0
        assert "0 error(s)" in out

    @pytest.mark.parametrize(
        "name,expected", sorted(MUTANT_CODES.items())
    )
    def test_race_mutant_exits_one(self, capsys, name, expected):
        status, out, _ = self.run(
            capsys, "race", "--json", RACES_BAD / name
        )
        assert status == 1
        found = {
            d["code"] for d in json.loads(out)["diagnostics"]
        }
        assert found == {expected}

    def test_race_directory_scan(self, capsys):
        status, _, _ = self.run(capsys, "race", RACES_OK)
        assert status == 0

    def test_race_suppress(self, capsys):
        status, _, _ = self.run(
            capsys,
            "race",
            "--suppress",
            "SRPC400",
            RACES_BAD / "concurrent_write.trace",
        )
        assert status == 0

    def test_race_self_check(self, capsys):
        status, out, _ = self.run(
            capsys, "race", "--self-check", "--root", Path(__file__).parents[2]
        )
        assert status == 0
        assert "trace(s) sanitized" in out

    def test_race_unreadable_trace_reports_srpc100(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.trace"
        bogus.write_text("{not json}\n", encoding="utf-8")
        status, out, _ = self.run(capsys, "race", "--json", bogus)
        assert status == 1
        assert {
            d["code"] for d in json.loads(out)["diagnostics"]
        } == {"SRPC100"}

    def test_race_missing_file_exits_two(self, capsys):
        status, _, err = self.run(capsys, "race", RACES_OK / "absent.trace")
        assert status == 2
        assert "no such file" in err

    def test_race_no_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["race"])
        assert excinfo.value.code == 2

    def test_plain_self_check_covers_sanitizer(self, capsys):
        # The repository-wide self-check must include the race
        # fixtures' good traces (and stay clean on them).
        status, out, _ = self.run(
            capsys, "--self-check", "--root", Path(__file__).parents[2]
        )
        assert status == 0
        assert "skipped missing" not in out
