"""Unit tests for the shared diagnostic engine."""

import json
from pathlib import Path

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    RULES,
    Severity,
    SourceLocation,
    rule,
)
from repro.analysis.render import render_json, render_text

GOLDEN = Path(__file__).parent / "fixtures" / "golden" / "report.json"


def sample_diagnostics():
    """A fixed diagnostic list shared with the golden-JSON fixture."""
    collector = DiagnosticCollector()
    collector.emit(
        "SRPC003",
        "struct 'stray' is not reachable from any interface procedure",
        SourceLocation(file="a.x", line=4, col=8),
        hint="remove the declaration or reference it from a signature",
    )
    collector.emit(
        "SRPC001",
        "expected '}' (line 9, column 1)",
        SourceLocation(file="a.x", line=9, col=1),
    )
    collector.emit(
        "SRPC103",
        "session 'A#1' ended without invalidating participant(s) 'B'",
        SourceLocation(file="run.trace", line=12),
        session="A#1",
    )
    return collector


class TestCatalog:
    def test_every_code_has_three_digit_suffix(self):
        for code in RULES:
            assert code.startswith("SRPC") and code[4:].isdigit()

    def test_rule_lookup(self):
        assert rule("SRPC001").severity is Severity.ERROR
        assert rule("SRPC003").severity is Severity.WARNING

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            rule("SRPC999")

    def test_layers_are_distinct(self):
        idl = [c for c in RULES if c < "SRPC100"]
        trace = [c for c in RULES if "SRPC100" <= c < "SRPC200"]
        session = [c for c in RULES if c >= "SRPC200"]
        assert idl and trace and session


class TestSourceLocation:
    def test_full_form(self):
        assert str(SourceLocation("a.x", 3, 7)) == "a.x:3:7"

    def test_line_only(self):
        assert str(SourceLocation("run.trace", 12)) == "run.trace:12"

    def test_empty(self):
        assert str(SourceLocation()) == "<input>"


class TestCollector:
    def test_emit_uses_catalog_severity(self):
        collector = DiagnosticCollector()
        diagnostic = collector.emit("SRPC001", "boom")
        assert diagnostic.severity is Severity.ERROR
        assert collector.has_errors

    def test_suppression_drops_silently(self):
        collector = DiagnosticCollector(suppress=["SRPC003"])
        assert collector.emit("SRPC003", "orphan") is None
        assert len(collector) == 0

    def test_unknown_code_raises_even_when_suppressing(self):
        collector = DiagnosticCollector()
        with pytest.raises(KeyError):
            collector.emit("SRPC999", "nope")

    def test_counts(self):
        collector = sample_diagnostics()
        assert collector.counts() == {
            "error": 2, "warning": 1, "info": 0
        }

    def test_sorted_orders_by_file_then_position(self):
        ordered = sample_diagnostics().sorted()
        assert [d.code for d in ordered] == [
            "SRPC003", "SRPC001", "SRPC103"
        ]

    def test_extend_honours_suppression(self):
        source = sample_diagnostics()
        target = DiagnosticCollector(suppress=["SRPC103"])
        target.extend(source)
        assert [d.code for d in target] == ["SRPC003", "SRPC001"]


class TestRenderers:
    def test_text_includes_location_and_code(self):
        text = render_text(sample_diagnostics())
        assert "a.x:4:8: warning SRPC003" in text
        assert "run.trace:12: error SRPC103" in text
        assert text.endswith("2 error(s), 1 warning(s), 0 note(s)")

    def test_text_hint_rendered_indented(self):
        text = render_text(sample_diagnostics())
        assert "\n    hint: remove the declaration" in text

    def test_json_matches_golden(self):
        rendered = render_json(sample_diagnostics())
        assert json.loads(rendered) == json.loads(
            GOLDEN.read_text(encoding="utf-8")
        )

    def test_json_is_stable(self):
        one = render_json(sample_diagnostics())
        two = render_json(sample_diagnostics())
        assert one == two

    def test_empty_render(self):
        collector = DiagnosticCollector()
        assert render_text(collector) == (
            "0 error(s), 0 warning(s), 0 note(s)"
        )
        report = json.loads(render_json(collector))
        assert report["diagnostics"] == []
