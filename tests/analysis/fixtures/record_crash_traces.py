#!/usr/bin/env python
"""Regenerate the recorded crash-trace fixtures (fault tolerance).

Runs a deterministic three-space deployment — ground G against two
exposing homes H and T — through two sessions on one shared trace:

1. a clean session that dirties both homes' trees, so session end
   runs the full two-phase write-back (a ``writeback-phase`` prepare
   and commit at each home);
2. a session that loses H mid-exchange, so the ground aborts
   (``session-abort``) and synchronously reaps its orphaned state
   (``orphan-reaped``).

The good trace lands in ``traces/ok/crash_session.trace``; each
mutant in ``traces/bad/`` violates exactly one fault-tolerance
obligation, so exactly one of SRPC320–SRPC322 fires per file:

* ``abort_without_reap.trace`` — the reap records are dropped: the
  abort leaked protected pages and allocation-table entries
  (SRPC320);
* ``commit_without_prepare.trace`` — the prepare phases are dropped:
  the homes committed data they never staged (SRPC321);
* ``activity_after_reap.trace`` — the ground's reap record is moved
  before its session's data-plane activity: a live session was
  reaped under the program (SRPC322).

Run from the repository root::

    PYTHONPATH=src python tests/analysis/fixtures/record_crash_traces.py
"""

from __future__ import annotations

from pathlib import Path

from repro.namesvc import TypeNameServer, TypeResolver
from repro.simnet import Network, StatsCollector
from repro.simnet.tracefmt import save_trace
from repro.smartrpc import SmartRpcRuntime
from repro.smartrpc.errors import SessionAbortedError
from repro.smartrpc.policy import make_policy
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
)
from repro.xdr import SPARC32
from repro.xdr.registry import TypeRegistry
from repro.xdr.view import StructView

HERE = Path(__file__).resolve().parent
OK = HERE / "traces" / "ok"
BAD = HERE / "traces" / "bad"

GROUND = "G"
HOMES = ("H", "T")


def record_sessions():
    """One clean two-phase session, then one aborted by a crash."""
    network = Network(stats=StatsCollector(trace=True))
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = {}
    for site_id in (GROUND,) + HOMES:
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            SPARC32,
            resolver=TypeResolver(site, "NS"),
            policy=make_policy("lazy"),
        )
        register_tree_types(runtime)
        runtime.import_interface(TREE_OPS)
        runtime.import_interface(TREE_EXPOSE)
        runtimes[site_id] = runtime
    for home in HOMES:
        bind_tree_expose(
            runtimes[home], build_complete_tree(runtimes[home], 3)
        )
    ground = runtimes[GROUND]
    spec = ground.resolver.resolve(TREE_NODE_TYPE_ID)

    def mark(session, home, value):
        pointer = tree_expose_client(ground, home).tree_root(session)
        view = StructView(ground.mem, pointer, spec, ground.arch)
        view.set("data", value.to_bytes(8, "big"))

    # Session 1: dirty both homes, close cleanly — the session end
    # stages (prepare) and applies (commit) a write-back at each home.
    with ground.session() as session:
        for home in HOMES:
            mark(session, home, 555)

    # Session 2: H dies after the ground cached and dirtied its root;
    # the next exchange fails, the ground aborts and self-reaps.
    try:
        with ground.session() as session:
            mark(session, "H", 777)
            network.crash("H")
            tree_expose_client(ground, "H").tree_checksum(session)
        raise SystemExit("session survived a crashed peer")
    except SessionAbortedError as exc:
        if not exc.reason.startswith("peer-unreachable:"):
            raise SystemExit(f"unexpected abort reason {exc.reason!r}")

    return network.stats.events


def drop(events, unwanted):
    return [e for e in events if not unwanted(e)]


def hoist_reap_before_activity(events):
    """Move the ground's reap record before its session's faults."""
    reap_index = next(
        i
        for i, e in enumerate(events)
        if e.category == "orphan-reaped"
        and (e.data or {}).get("space") == GROUND
    )
    reap = events[reap_index]
    session = (reap.data or {}).get("session")
    target = next(
        i
        for i, e in enumerate(events)
        if e.category in ("fault", "write")
        and (e.data or {}).get("space") == GROUND
        and (e.data or {}).get("session") == session
    )
    if target >= reap_index:
        raise SystemExit("no data-plane activity precedes the reap")
    rest = events[:reap_index] + events[reap_index + 1:]
    return rest[:target] + [reap] + rest[target:]


def main() -> None:
    OK.mkdir(parents=True, exist_ok=True)
    BAD.mkdir(parents=True, exist_ok=True)
    events = record_sessions()
    required = {"session-abort", "orphan-reaped", "writeback-phase"}
    missing = required - {e.category for e in events}
    if missing:
        raise SystemExit(f"recorded trace lacks {sorted(missing)}")

    save_trace(events, OK / "crash_session.trace")
    save_trace(
        drop(events, lambda e: e.category == "orphan-reaped"),
        BAD / "abort_without_reap.trace",
    )
    save_trace(
        drop(
            events,
            lambda e: e.category == "writeback-phase"
            and (e.data or {}).get("phase") == "prepare",
        ),
        BAD / "commit_without_prepare.trace",
    )
    save_trace(
        hoist_reap_before_activity(events),
        BAD / "activity_after_reap.trace",
    )
    print(
        f"recorded {len(events)} events into {OK} and 3 crash "
        f"mutants into {BAD}"
    )


if __name__ == "__main__":
    main()
