#!/usr/bin/env python
"""Regenerate the fetch-pipeline trace fixtures (SRPC310).

Runs one deterministic linked-list traversal under the ``pipelined``
policy — which coalesces demand requests, keeps prefetch exchanges in
flight, and absorbs faults into them — and records its trace.  The
good trace lands in ``traces/ok/pipelined_session.trace``; each bad
trace is the same session with one ``data-batch`` record corrupted so
exactly the SRPC310 rule fires:

* ``batch_uncovered_fault.trace`` — a demand batch claims to coalesce
  a fault that never happened;
* ``batch_overlapping_prefetch.trace`` — a second prefetch is issued
  for pages an in-flight fetch already covers;
* ``batch_absorb_unissued.trace`` — an absorb names a fetch id that
  was never issued.

Run from the repository root::

    PYTHONPATH=src python tests/analysis/fixtures/record_pipeline_traces.py
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.bench.harness import CALLEE, make_world
from repro.simnet.tracefmt import save_trace
from repro.workloads.linked_list import build_list, list_client

HERE = Path(__file__).resolve().parent
OK = HERE / "traces" / "ok"
BAD = HERE / "traces" / "bad"


def record_session():
    """One pipelined session whose trace carries data-batch records."""
    world = make_world("pipelined", trace=True)
    head = build_list(world.caller, list(range(2048)))
    stub = list_client(world.caller, CALLEE)
    with world.caller.session() as session:
        stub.total(session, head)
    events = list(world.stats.events)
    kinds = {
        (event.data or {}).get("kind")
        for event in events
        if event.category == "data-batch"
    }
    missing = {"demand", "prefetch", "absorb"} - kinds
    if missing:
        raise SystemExit(f"recorded session never exercised {missing}")
    return events


def _mutate_batch(events, kind, **changes):
    """Copy ``events`` with the first ``kind`` data-batch's data edited."""
    out = []
    done = False
    for event in events:
        data = event.data or {}
        if (
            not done
            and event.category == "data-batch"
            and data.get("kind") == kind
        ):
            out.append(
                dataclasses.replace(event, data={**data, **changes})
            )
            done = True
        else:
            out.append(event)
    if not done:
        raise SystemExit(f"no {kind} data-batch to mutate")
    return out


def main():
    OK.mkdir(parents=True, exist_ok=True)
    BAD.mkdir(parents=True, exist_ok=True)
    events = record_session()
    save_trace(events, OK / "pipelined_session.trace")
    save_trace(
        _mutate_batch(events, "demand", faults=[9999]),
        BAD / "batch_uncovered_fault.trace",
    )
    first_prefetch = next(
        event.data
        for event in events
        if event.category == "data-batch"
        and (event.data or {}).get("kind") == "prefetch"
    )
    # A second prefetch for the same pages while the first is in
    # flight: splice a copy with a fresh fetch id right after it.
    overlapping = []
    for event in events:
        overlapping.append(event)
        if event.data is first_prefetch:
            overlapping.append(
                dataclasses.replace(
                    event, data={**first_prefetch, "fetch_id": 9999}
                )
            )
    save_trace(overlapping, BAD / "batch_overlapping_prefetch.trace")
    save_trace(
        _mutate_batch(events, "absorb", fetch_id=424242),
        BAD / "batch_absorb_unissued.trace",
    )


if __name__ == "__main__":
    main()
