#!/usr/bin/env python
"""Regenerate the recorded trace fixtures.

Runs one deterministic three-space smart-RPC session (ground A calls a
server on C that hands back a pointer into C's heap; A then modifies
the cached data locally) and records its trace, which exercises every
protocol obligation: activity transfers with piggybacks, a write
fault, a write, a session end with a dirty remote home, a write-back,
and an invalidation.

The good trace lands in ``traces/ok/``; each file in ``traces/bad/``
is the same trace with one obligation surgically removed, so exactly
one conformance rule fires per file.

Run from the repository root::

    PYTHONPATH=src python tests/analysis/fixtures/record_traces.py
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc.interface import InterfaceDef, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.simnet import Network, StatsCollector
from repro.simnet.tracefmt import dump_trace, save_trace
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
)
from repro.xdr import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry
from repro.xdr.types import PointerType
from repro.xdr.view import StructView

HERE = Path(__file__).resolve().parent
OK = HERE / "traces" / "ok"
BAD = HERE / "traces" / "bad"


def record_session():
    """One deterministic session whose trace uses every obligation."""
    network = Network(stats=StatsCollector(trace=True))
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    site_a = network.add_site("A")
    site_c = network.add_site("C")
    machine_a = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    machine_c = SmartRpcRuntime(
        network, site_c, X86_64, resolver=TypeResolver(site_c, "NS")
    )
    register_tree_types(machine_a)
    register_tree_types(machine_c)

    root = build_complete_tree(machine_c, 3)
    expose = InterfaceDef(
        "expose",
        [
            ProcedureDef(
                "tree_root", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ],
    )
    bind_server(machine_c, expose, {"tree_root": lambda ctx: root})
    stub = ClientStub(machine_a, expose, "C")
    spec = machine_a.resolver.resolve(TREE_NODE_TYPE_ID)

    with machine_a.session() as session:
        pointer = stub.tree_root(session)
        view = StructView(machine_a.mem, pointer, spec, machine_a.arch)
        view.set("data", (555).to_bytes(8, "big"))
    return network.stats.events


def mutate(events, drop=None, transform=None):
    """Copy the trace, dropping or rewriting selected events."""
    result = []
    for event in events:
        if drop is not None and drop(event):
            continue
        if transform is not None:
            event = transform(event) or event
        result.append(event)
    return result


def zero_first_piggyback(events):
    """Rewrite the first transfer as if it carried no modified data."""
    done = False

    def transform(event):
        nonlocal done
        if not done and event.category == "transfer":
            done = True
            data = dict(event.data)
            data["piggyback"] = 0
            return dataclasses.replace(event, data=data)
        return None

    return mutate(events, transform=transform)


def mislabel_as_lazy(events):
    """Declare the run lazy while its decisions still prefetch.

    Budgets are rewritten to 0 in both the declarations and the
    decisions, so they agree with each other (no SRPC300) — but the
    recorded prefetched bytes betray the label (SRPC301 only).
    """

    def transform(event):
        if event.category == "policy":
            data = dict(event.data)
            data.update(policy="lazy", budget=0, strategy="isolated")
            return dataclasses.replace(event, data=data)
        if event.category == "policy-decision":
            data = dict(event.data)
            data.update(policy="lazy", budget=0)
            return dataclasses.replace(event, data=data)
        return None

    return mutate(events, transform=transform)


def break_first_budget(events):
    """Rewrite one decision's budget away from the declared one."""
    done = False

    def transform(event):
        nonlocal done
        if not done and event.category == "policy-decision":
            done = True
            data = dict(event.data)
            data["budget"] = max(1, data.get("budget", 0) // 2)
            return dataclasses.replace(event, data=data)
        return None

    return mutate(events, transform=transform)


def mislabel_as_graphcopy(events):
    """Declare graphcopy marshalling over a data-plane trace."""

    def transform(event):
        if event.category == "policy":
            data = dict(event.data)
            data.update(policy="graphcopy", marshalling="graphcopy")
            return dataclasses.replace(event, data=data)
        return None

    return mutate(events, transform=transform)


def main() -> None:
    OK.mkdir(parents=True, exist_ok=True)
    BAD.mkdir(parents=True, exist_ok=True)
    events = record_session()
    categories = {e.category for e in events}
    required = {
        "transfer", "fault", "write",
        "session-end", "write-back", "invalidate",
        "policy", "policy-decision",
    }
    missing = required - categories
    if missing:
        raise SystemExit(f"recorded trace lacks {sorted(missing)}")
    if not any(
        (e.data or {}).get("prefetch_bytes", 0) > 0
        for e in events
        if e.category == "policy-decision"
    ):
        raise SystemExit(
            "recorded trace shipped no prefetched bytes; the "
            "mislabelled-lazy mutant needs some"
        )

    save_trace(events, OK / "tree_session.trace")
    save_trace(
        mutate(events, drop=lambda e: e.category == "invalidate"),
        BAD / "no_invalidate.trace",
    )
    save_trace(
        mutate(events, drop=lambda e: e.category == "write-back"),
        BAD / "no_write_back.trace",
    )
    save_trace(
        mutate(events, drop=lambda e: e.category == "session-end"),
        BAD / "no_session_end.trace",
    )
    save_trace(
        mutate(
            events,
            drop=lambda e: e.category == "fault"
            and (e.data or {}).get("kind") == "write",
        ),
        BAD / "no_write_fault.trace",
    )
    save_trace(zero_first_piggyback(events), BAD / "empty_piggyback.trace")
    save_trace(mislabel_as_lazy(events), BAD / "mislabelled_lazy.trace")
    save_trace(break_first_budget(events), BAD / "budget_mismatch.trace")
    save_trace(
        mislabel_as_graphcopy(events),
        BAD / "mislabelled_graphcopy.trace",
    )

    good = dump_trace(events).splitlines()
    good[1] = '{"not": "a trace record"}'
    (BAD / "malformed.trace").write_text(
        "\n".join(good) + "\n", encoding="utf-8"
    )
    print(f"recorded {len(events)} events into {OK} and 9 mutants into {BAD}")


if __name__ == "__main__":
    main()
