#!/usr/bin/env python
"""Regenerate the recorded race-trace fixtures (coherency sanitizer).

Runs one deterministic two-sided session between ground A and peer C:

* A calls ``search_update`` on C over a tree homed at *A*, so the
  callee faults on — and writes — caller-homed data (data-plane
  activity at the participant the invalidation later targets);
* A then fetches C's exposed tree root and modifies it, so the ground
  holds dirty data homed at *C* and session end runs the two-phase
  write-back (a prepare and commit at C) before invalidating C.

Every event carries its vector-clock stamp (trace schema revision 2),
so the happens-before sanitizer (:mod:`repro.analysis.sanitizer`) can
rebuild the causal order exactly.  The good trace lands in
``races/ok/``; each mutant in ``races/bad/`` perturbs the causal
fabric in one way, so exactly one SRPC4xx rule fires per file:

* ``concurrent_write.trace`` — a write spliced in with a clock
  concurrent to the session's real writes: a data race (SRPC400);
* ``stale_read.trace`` — a replayed fault observing the pre-write
  page version causally *after* the write: a stale read (SRPC401);
* ``early_invalidate.trace`` — the invalidation's clock rewritten to
  be concurrent with C's activity: a lost invalidation (SRPC402);
* ``use_after_invalidate.trace`` — a fault at C causally after its
  invalidation: use-after-invalidate (SRPC403);
* ``lost_commit.trace`` — the home-side commit records dropped: the
  ground's writes were never committed (SRPC404);
* ``late_write.trace`` — the ground's write clock pushed past the
  commit's: the committed batch cannot contain it (SRPC404);
* ``deadlock_cycle.trace`` — two dangling requests closing a
  waits-for cycle: distributed deadlock (SRPC405).

Each mutant is verified at record time: the good trace must sanitize
clean and every mutant must raise exactly its expected rule.

Run from the repository root::

    PYTHONPATH=src python tests/analysis/fixtures/record_race_traces.py
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.sanitizer import check_events
from repro.namesvc import TypeNameServer, TypeResolver
from repro.simnet import Network, StatsCollector
from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import save_trace
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    bind_tree_server,
    tree_client,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
)
from repro.xdr import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry
from repro.xdr.view import StructView

HERE = Path(__file__).resolve().parent
OK = HERE / "races" / "ok"
BAD = HERE / "races" / "bad"

GROUND = "A"
PEER = "C"

#: Expected sanitizer findings per mutant fixture.
EXPECTED = {
    "concurrent_write.trace": "SRPC400",
    "stale_read.trace": "SRPC401",
    "early_invalidate.trace": "SRPC402",
    "use_after_invalidate.trace": "SRPC403",
    "lost_commit.trace": "SRPC404",
    "late_write.trace": "SRPC404",
    "deadlock_cycle.trace": "SRPC405",
}


def record_session():
    """One two-sided session: activity and dirty data on both sides."""
    network = Network(stats=StatsCollector(trace=True))
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    site_a = network.add_site(GROUND)
    site_c = network.add_site(PEER)
    ground = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    peer = SmartRpcRuntime(
        network, site_c, X86_64, resolver=TypeResolver(site_c, "NS")
    )
    for runtime in (ground, peer):
        register_tree_types(runtime)
        runtime.import_interface(TREE_OPS)
        runtime.import_interface(TREE_EXPOSE)
    bind_tree_server(peer)
    bind_tree_expose(peer, build_complete_tree(peer, 3))
    local_root = build_complete_tree(ground, 3)
    spec = ground.resolver.resolve(TREE_NODE_TYPE_ID)

    with ground.session() as session:
        # The callee walks and updates the caller-homed tree: faults
        # and writes at C whose home is the ground.
        tree_client(ground, PEER).search_update(session, local_root, 3)
        # The ground dirties C-homed data: session end must run the
        # two-phase write-back (prepare + commit at C).
        pointer = tree_expose_client(ground, PEER).tree_root(session)
        view = StructView(ground.mem, pointer, spec, ground.arch)
        view.set("data", (777).to_bytes(8, "big"))
    return network.stats.events


# -- trace surgery ------------------------------------------------------------


def find(events, predicate, what):
    """Index of the first matching event, or die explaining why."""
    for index, event in enumerate(events):
        if predicate(event):
            return index
    raise SystemExit(f"recorded trace has no {what}")


def ground_write_index(events):
    return find(
        events,
        lambda e: e.category == "write"
        and (e.data or {}).get("space") == GROUND
        and (e.data or {}).get("home") == PEER,
        f"write at {GROUND} homed at {PEER}",
    )


def invalidate_index(events):
    return find(
        events,
        lambda e: e.category == "invalidate"
        and (e.data or {}).get("dst") == PEER,
        f"invalidation targeting {PEER}",
    )


def splice(events, index, event):
    return events[:index] + [event] + events[index:]


def make_event(after, category, detail, data):
    """A synthetic event timed just after ``after``."""
    return TraceEvent(
        time=after.time + 1e-6, category=category, detail=detail,
        data=data,
    )


def concurrent_write(events):
    """Splice a write whose clock races the session's real writes."""
    inv = events[invalidate_index(events)]
    session = inv.data["session"]
    # Only the peer's own component: concurrent with every real write
    # (each carries a nonzero ground component this clock lacks), yet
    # still happens-before the invalidation, so only SRPC400 fires.
    clock = {PEER: inv.data["vc"].get(PEER, 0)}
    rogue = make_event(
        inv,
        "write",
        f"{PEER}: spliced racing write",
        {
            "session": session,
            "space": PEER,
            "page": 991,
            "version": 1,
            "site": PEER,
            "seq": 900,
            "vc": clock,
        },
    )
    return splice(events, invalidate_index(events), rogue)


def stale_read(events):
    """Replay a fault observing the pre-write version after the write."""
    write = events[ground_write_index(events)]
    end = events[find(
        events,
        lambda e: e.category == "session-end",
        "session-end",
    )]
    clock = dict(end.data["vc"])
    clock[GROUND] = clock.get(GROUND, 0) + 1
    ghost = make_event(
        end,
        "fault",
        f"{GROUND}: spliced stale re-read",
        {
            "session": write.data["session"],
            "space": GROUND,
            "page": write.data["page"],
            "kind": "read",
            "version": write.data["version"] - 1,
            "site": GROUND,
            "seq": 901,
            "vc": clock,
        },
    )
    return events + [ghost]


def early_invalidate(events):
    """Strip the invalidation's clock of everything it learned from C."""
    index = invalidate_index(events)
    inv = events[index]
    data = dict(inv.data)
    # The ground component alone: the rewritten invalidation no longer
    # dominates any of C's activity, so the two are concurrent.
    data["vc"] = {GROUND: inv.data["vc"].get(GROUND, 0)}
    return (
        events[:index]
        + [dataclasses.replace(inv, data=data)]
        + events[index + 1:]
    )


def use_after_invalidate(events):
    """A fault at C causally after C's invalidation."""
    inv = events[invalidate_index(events)]
    clock = dict(inv.data["vc"])
    clock[PEER] = clock.get(PEER, 0) + 1
    ghost = make_event(
        inv,
        "fault",
        f"{PEER}: spliced post-invalidate access",
        {
            "session": inv.data["session"],
            "space": PEER,
            "page": 992,
            "kind": "read",
            "version": 0,
            "site": PEER,
            "seq": 902,
            "vc": clock,
        },
    )
    return events + [ghost]


def lost_commit(events):
    """Drop the home-side commit records: the writes never landed."""
    return [
        e
        for e in events
        if not (
            e.category == "writeback-phase"
            and (e.data or {}).get("phase") == "commit"
        )
    ]


def late_write(events):
    """Push the ground's write causally past its home's commit."""
    index = ground_write_index(events)
    write = events[index]
    commit = events[find(
        events,
        lambda e: e.category == "writeback-phase"
        and (e.data or {}).get("phase") == "commit"
        and (e.data or {}).get("space") == PEER,
        f"write-back commit at {PEER}",
    )]
    clock = dict(commit.data["vc"])
    clock[GROUND] = clock.get(GROUND, 0) + 50
    data = dict(write.data)
    data["vc"] = clock
    return (
        events[:index]
        + [dataclasses.replace(write, data=data)]
        + events[index + 1:]
    )


def deadlock_cycle(events):
    """Two dangling requests closing a waits-for cycle."""
    last = events[-1]
    hang_out = make_event(
        last,
        "message",
        f"{GROUND}->{PEER} status 0B",
        {"src": GROUND, "dst": PEER, "kind": "status", "size": 0},
    )
    hang_back = make_event(
        last,
        "message",
        f"{PEER}->{GROUND} status 0B",
        {"src": PEER, "dst": GROUND, "kind": "status", "size": 0},
    )
    return events + [hang_out, hang_back]


MUTANTS = {
    "concurrent_write.trace": concurrent_write,
    "stale_read.trace": stale_read,
    "early_invalidate.trace": early_invalidate,
    "use_after_invalidate.trace": use_after_invalidate,
    "lost_commit.trace": lost_commit,
    "late_write.trace": late_write,
    "deadlock_cycle.trace": deadlock_cycle,
}


def sanitize(events):
    """The set of SRPC codes the sanitizer reports for ``events``."""
    collector = DiagnosticCollector()
    check_events(events, collector)
    return {d.code for d in collector}


def main() -> None:
    OK.mkdir(parents=True, exist_ok=True)
    BAD.mkdir(parents=True, exist_ok=True)
    events = record_session()

    peer_activity = [
        e
        for e in events
        if e.category in ("fault", "write")
        and (e.data or {}).get("space") == PEER
    ]
    if not peer_activity:
        raise SystemExit(
            f"recorded trace has no data-plane activity at {PEER}; "
            "the invalidation rules would be vacuous"
        )
    found = sanitize(events)
    if found:
        raise SystemExit(f"good trace is not race-free: {sorted(found)}")
    save_trace(events, OK / "race_session.trace")

    for name, mutate in MUTANTS.items():
        mutated = mutate(list(events))
        found = sanitize(mutated)
        expected = {EXPECTED[name]}
        if found != expected:
            raise SystemExit(
                f"{name}: expected {sorted(expected)}, sanitizer "
                f"found {sorted(found)}"
            )
        save_trace(mutated, BAD / name)

    print(
        f"recorded {len(events)} events into {OK} and "
        f"{len(MUTANTS)} race mutants into {BAD}"
    )


if __name__ == "__main__":
    main()
