#!/usr/bin/env python
"""Regenerate the recorded segment-handover fixtures (shm carrier).

Runs two bulk smart-RPC sessions over the in-process shared-memory
world: the ground walks and dirties a 255-node tree homed at the
callee, so the fetch replies and the two-phase write-back batches all
exceed the control-ring spill threshold and ship as *segment extents*
— every zero-copy mapping lands in the trace as a ``segment-handover``
event (offset, length, extent stamp, epoch, causal stamp).

The good trace lands in ``traces/ok/shm_session.trace``; each mutant
in ``traces/bad/`` breaks exactly one carrier promise, so SRPC330
fires per file:

* ``handover_stale_epoch.trace`` — one mapping's live segment epoch
  disagrees with the frame's epoch: the reader mapped memory whose
  owner had restarted;
* ``handover_epoch_regress.trace`` — a segment's observed epoch steps
  backwards: a recycled segment name or corrupt trace;
* ``handover_vc_reorder.trace`` — two handovers recorded at one site
  are swapped, so the site's vector clock steps backwards;
* ``handover_missing_field.trace`` — a mapping dropped its extent
  stamp from the record.

Run from the repository root::

    PYTHONPATH=src python tests/analysis/fixtures/record_handover_traces.py
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.bench.harness import CALLEE, PROPOSED, make_world
from repro.simnet.stats import TraceEvent
from repro.simnet.tracefmt import save_trace
from repro.workloads.traversal import bind_tree_expose, tree_expose_client
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree
from repro.xdr.view import StructView

HERE = Path(__file__).resolve().parent
OK = HERE / "traces" / "ok"
BAD = HERE / "traces" / "bad"
NODES = 255  # batches well past the control-ring spill threshold


def record_sessions():
    """Two bulk sessions; every large batch ships as a handover."""
    with make_world(PROPOSED, transport="shm", trace=True) as world:
        remote_root = build_complete_tree(world.callee, NODES)
        bind_tree_expose(world.callee, remote_root)
        stub = tree_expose_client(world.caller, CALLEE)
        spec = world.caller.resolver.resolve(TREE_NODE_TYPE_ID)
        for _ in range(2):
            with world.caller.session() as session:
                stack = [stub.tree_root(session)]
                while stack:
                    address = stack.pop()
                    if address == 0:
                        continue
                    view = StructView(
                        world.caller.mem, address, spec, world.caller.arch
                    )
                    value = int.from_bytes(view.get("data"), "big") + 1
                    view.set("data", value.to_bytes(8, "big"))
                    stack.append(view.get("right"))
                    stack.append(view.get("left"))
        return list(world.stats.events)


def mutate(events, index, **changes):
    """One event with ``changes`` applied to (or popped from) its data."""
    event = events[index]
    data = dict(event.data or {})
    for key, value in changes.items():
        if value is None:
            data.pop(key, None)
        else:
            data[key] = value
    copy = list(events)
    copy[index] = TraceEvent(event.time, event.category, event.detail, data)
    return copy


def swap_data(events, first, second):
    """The two events trade payloads (positions and times stay put)."""
    copy = list(events)
    a, b = events[first], events[second]
    copy[first] = TraceEvent(a.time, a.category, a.detail, b.data)
    copy[second] = TraceEvent(b.time, b.category, b.detail, a.data)
    return copy


def main() -> None:
    OK.mkdir(parents=True, exist_ok=True)
    BAD.mkdir(parents=True, exist_ok=True)
    events = record_sessions()
    handovers = [
        i for i, e in enumerate(events) if e.category == "segment-handover"
    ]
    if len(handovers) < 2:
        raise SystemExit(f"only {len(handovers)} handover(s) recorded")

    last = handovers[-1]
    last_data = events[last].data

    # A segment mapped at least twice, so a decremented final epoch
    # regresses below the segment's earlier observations.
    segments = Counter(events[i].data["segment"] for i in handovers)
    repeated = next(
        (
            i
            for i in reversed(handovers)
            if segments[events[i].data["segment"]] >= 2
        ),
        None,
    )
    if repeated is None:
        raise SystemExit("no segment was mapped twice")

    # Two handovers recorded at one site, for the clock-reorder swap.
    sites = Counter(events[i].data["site"] for i in handovers)
    site = next(s for s, n in sites.most_common(1) if n >= 2)
    at_site = [i for i in handovers if events[i].data["site"] == site]

    save_trace(events, OK / "shm_session.trace")
    save_trace(
        mutate(
            events, last, segment_epoch=last_data["segment_epoch"] + 1
        ),
        BAD / "handover_stale_epoch.trace",
        validate=False,
    )
    repeated_data = events[repeated].data
    save_trace(
        mutate(
            events,
            repeated,
            epoch=repeated_data["epoch"] - 1,
            segment_epoch=repeated_data["segment_epoch"] - 1,
        ),
        BAD / "handover_epoch_regress.trace",
        validate=False,
    )
    save_trace(
        swap_data(events, at_site[-2], at_site[-1]),
        BAD / "handover_vc_reorder.trace",
        validate=False,
    )
    save_trace(
        mutate(events, last, extent=None),
        BAD / "handover_missing_field.trace",
        validate=False,
    )
    print(
        f"recorded {len(events)} events ({len(handovers)} handovers) "
        f"into {OK} and 4 handover mutants into {BAD}"
    )


if __name__ == "__main__":
    main()
