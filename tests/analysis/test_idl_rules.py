"""Fixture-driven tests: one passing and one failing case per rule."""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.idl_rules import (
    analyze_files,
    analyze_source,
    file_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures" / "idl"


def lint(*names, **kwargs):
    return analyze_files(
        [FIXTURES / name for name in names], **kwargs
    )


def codes(collector):
    return sorted({d.code for d in collector})


@pytest.mark.parametrize(
    "fixture, code",
    [
        ("srpc001", "SRPC001"),
        ("srpc003", "SRPC003"),
        ("srpc005", "SRPC005"),
        ("srpc006", "SRPC006"),
        ("srpc007", "SRPC007"),
    ],
)
class TestSingleFileRules:
    def test_bad_fixture_trips_exactly_its_rule(self, fixture, code):
        collector = lint(f"{fixture}_bad.x")
        assert codes(collector) == [code]

    def test_ok_fixture_is_clean(self, fixture, code):
        collector = lint(f"{fixture}_ok.x")
        assert codes(collector) == []


class TestCrossFileConflicts:
    def test_identical_rebind_is_clean(self):
        collector = lint("srpc008_ok_a.x", "srpc008_ok_b.x")
        assert codes(collector) == []

    def test_conflicting_rebind_trips_srpc008(self):
        collector = lint("srpc008_bad_a.x", "srpc008_bad_b.x")
        assert "SRPC008" in codes(collector)

    def test_conflict_cites_both_files(self):
        collector = lint("srpc008_bad_a.x", "srpc008_bad_b.x")
        conflict = next(d for d in collector if d.code == "SRPC008")
        assert "srpc008_bad_a.x" in conflict.message
        assert conflict.location.file.endswith("srpc008_bad_b.x")


class TestDiagnosticLocations:
    def test_orphan_warning_points_at_declaration(self):
        collector = lint("srpc003_bad.x")
        finding = collector.diagnostics[0]
        text = (FIXTURES / "srpc003_bad.x").read_text()
        declared_on = next(
            i
            for i, line in enumerate(text.splitlines(), start=1)
            if line.startswith("struct stray")
        )
        assert finding.location.line == declared_on

    def test_parse_error_carries_position(self):
        collector = lint("srpc001_bad.x")
        finding = collector.diagnostics[0]
        assert finding.location.line is not None


class TestSuppression:
    def test_file_directive_parsed(self):
        text = (FIXTURES / "suppressed.x").read_text()
        assert file_suppressions(text) == ["SRPC003"]

    def test_directive_silences_the_rule(self):
        collector = lint("suppressed.x")
        assert codes(collector) == []

    def test_same_shape_warns_without_directive(self):
        # suppressed.x is srpc003_bad.x plus the directive; removing
        # the directive line must bring the warning back.
        text = (FIXTURES / "suppressed.x").read_text()
        stripped = "\n".join(
            line
            for line in text.splitlines()
            if "smartlint:" not in line
        )
        collector = analyze_source(stripped, filename="stripped.x")
        assert codes(collector) == ["SRPC003"]


class TestClosureBudget:
    def test_budget_is_configurable(self):
        # The ok fixture's 72-byte record overflows a 64-byte budget.
        collector = lint("srpc005_ok.x", closure_size=64)
        assert "SRPC005" in codes(collector)


class TestShippedInterfacesStayClean:
    def test_examples_lint_clean(self):
        shipped = sorted(
            (Path(__file__).parents[2] / "examples" / "interfaces").glob(
                "*.x"
            )
        )
        assert shipped, "no shipped interfaces found"
        collector = analyze_files(shipped)
        assert codes(collector) == []
