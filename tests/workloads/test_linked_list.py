"""Tests for the linked-list workload."""

import pytest

from repro.workloads.linked_list import (
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
)


@pytest.fixture
def served(smart_pair):
    bind_list_server(smart_pair.b)
    smart_pair.a.import_interface(LIST_OPS)
    return smart_pair, list_client(smart_pair.a, "B")


class TestBuildAndRead:
    def test_round_trip(self, smart_pair):
        head = build_list(smart_pair.a, [5, -3, 0, 7])
        assert read_list(smart_pair.a, head) == [5, -3, 0, 7]

    def test_empty_list(self, smart_pair):
        assert build_list(smart_pair.a, []) == 0
        assert read_list(smart_pair.a, 0) == []


class TestRemoteProcedures:
    def test_total(self, served):
        pair, stub = served
        head = build_list(pair.a, [1, 2, 3, 4])
        with pair.a.session() as session:
            assert stub.total(session, head) == 10

    def test_total_of_empty(self, served):
        pair, stub = served
        with pair.a.session() as session:
            assert stub.total(session, 0) == 0

    def test_scale_updates_home_values(self, served):
        pair, stub = served
        head = build_list(pair.a, [1, 2, 3])
        with pair.a.session() as session:
            count = stub.scale(session, head, 10)
        assert count == 3
        assert read_list(pair.a, head) == [10, 20, 30]

    def test_scale_with_negatives(self, served):
        pair, stub = served
        head = build_list(pair.a, [-2, 5])
        with pair.a.session() as session:
            stub.scale(session, head, -3)
        assert read_list(pair.a, head) == [6, -15]

    def test_append_range(self, served):
        pair, stub = served
        head = build_list(pair.a, [9])
        with pair.a.session() as session:
            stub.append_range(session, head, 0, 3)
        assert read_list(pair.a, head) == [9, 0, 1, 2]

    def test_drop_negatives_head_run(self, served):
        pair, stub = served
        head = build_list(pair.a, [-5, -6, 1, -7, 2])
        with pair.a.session() as session:
            new_head = stub.drop_negatives(session, head)
        assert read_list(pair.a, new_head) == [1, 2]

    def test_drop_negatives_all_negative(self, served):
        pair, stub = served
        head = build_list(pair.a, [-1, -2])
        with pair.a.session() as session:
            assert stub.drop_negatives(session, head) == 0

    def test_drop_negatives_none_negative(self, served):
        pair, stub = served
        head = build_list(pair.a, [1, 2])
        with pair.a.session() as session:
            new_head = stub.drop_negatives(session, head)
        assert read_list(pair.a, new_head) == [1, 2]
