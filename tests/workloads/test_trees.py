"""Tests for the complete-binary-tree workload builder."""

import pytest

from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    complete_tree_depth,
    local_tree_checksum,
    tree_node_spec,
)
from repro.xdr.arch import SPARC32, X86_64


class TestNodeSpec:
    def test_sixteen_bytes_on_sparc(self):
        """Paper: 'each node has 16 bytes (two 4-byte pointers and
        8-byte data)'."""
        assert tree_node_spec().sizeof(SPARC32) == 16

    def test_twenty_four_bytes_on_x86_64(self):
        assert tree_node_spec().sizeof(X86_64) == 24


class TestDepth:
    @pytest.mark.parametrize("nodes,depth", [
        (1, 0), (3, 1), (7, 2), (16383, 13), (32767, 14), (65535, 15),
    ])
    def test_valid_counts(self, nodes, depth):
        assert complete_tree_depth(nodes) == depth

    @pytest.mark.parametrize("nodes", [0, 2, 4, 100, -1])
    def test_invalid_counts_rejected(self, nodes):
        with pytest.raises(ValueError):
            complete_tree_depth(nodes)


class TestBuild:
    def test_structure_heap_ordered(self, smart_pair):
        runtime = smart_pair.a
        root = build_complete_tree(runtime, 7)
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(runtime.arch)

        def read_node(address):
            left = runtime.codec.read_pointer(
                address + layout.offsets["left"]
            )
            right = runtime.codec.read_pointer(
                address + layout.offsets["right"]
            )
            data = runtime.space.read_raw(
                address + layout.offsets["data"], 8
            )
            return left, right, int.from_bytes(data, "big")

        left, right, index = read_node(root)
        assert index == 0 and left != 0 and right != 0
        _, _, left_index = read_node(left)
        _, _, right_index = read_node(right)
        assert (left_index, right_index) == (1, 2)

    def test_leaves_have_null_children(self, smart_pair):
        runtime = smart_pair.a
        root = build_complete_tree(runtime, 3)
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(runtime.arch)
        left = runtime.codec.read_pointer(root + layout.offsets["left"])
        leaf_left = runtime.codec.read_pointer(
            left + layout.offsets["left"]
        )
        assert leaf_left == 0

    def test_checksum_is_sum_of_indices(self, smart_pair):
        runtime = smart_pair.a
        root = build_complete_tree(runtime, 15)
        assert local_tree_checksum(runtime, root) == sum(range(15))

    def test_all_nodes_typed_in_heap(self, smart_pair):
        runtime = smart_pair.a
        root = build_complete_tree(runtime, 7)
        assert (
            runtime.heap.allocation_at(root).type_id == TREE_NODE_TYPE_ID
        )
        assert len(runtime.heap.live_allocations) == 7

    def test_build_on_64_bit_architecture(self, smart_pair):
        runtime = smart_pair.b  # x86-64
        root = build_complete_tree(runtime, 7)
        assert local_tree_checksum(runtime, root) == sum(range(7))
