"""Tests for the hash-table workload."""

import pytest

from repro.workloads.hashtable import (
    HASH_OPS,
    NUM_BUCKETS,
    bucket_of,
    build_hash_table,
    bind_hash_server,
    hash_client,
    value_for,
)


@pytest.fixture
def served(smart_pair):
    table, lengths = build_hash_table(
        smart_pair.a, list(range(500))
    )
    bind_hash_server(smart_pair.b)
    smart_pair.a.import_interface(HASH_OPS)
    return smart_pair, table, lengths, hash_client(smart_pair.a, "B")


class TestBuild:
    def test_every_key_chained_under_its_bucket(self, served):
        pair, table, lengths, stub = served
        assert sum(lengths.values()) == 500
        assert all(0 <= bucket < NUM_BUCKETS for bucket in lengths)

    def test_bucket_of_is_stable(self):
        assert bucket_of(123) == bucket_of(123)
        assert 0 <= bucket_of(99999) < NUM_BUCKETS


class TestRemoteLookup:
    def test_hit_returns_value_word(self, served):
        pair, table, lengths, stub = served
        with pair.a.session() as session:
            assert stub.lookup(session, table, 37) == int.from_bytes(
                value_for(37)[8:], "big"
            )

    def test_miss_returns_minus_one(self, served):
        pair, table, lengths, stub = served
        with pair.a.session() as session:
            assert stub.lookup(session, table, 10**6) == -1

    def test_lookup_many_sums_hits(self, served):
        pair, table, lengths, stub = served
        with pair.a.session() as session:
            total = stub.lookup_many(session, table, 10, 5)
        expected = sum(
            int.from_bytes(value_for(key)[8:], "big")
            for key in range(10, 15)
        )
        assert total == expected

    def test_sparse_access_moves_little_data(self, served):
        """The paper's pro-lazy observation: a lookup touches one
        chain, so the proposed method must not ship the table."""
        pair, table, lengths, stub = served
        # The eager method moves the whole table (~130 KB encoded for
        # this workload); sparse access must stay well under that.
        with pair.a.session() as session:
            stub.lookup(session, table, 3)
        assert pair.network.stats.total_bytes < 32000

    def test_repeated_lookup_cached(self, served):
        pair, table, lengths, stub = served
        with pair.a.session() as session:
            stub.lookup(session, table, 3)
            callbacks = pair.network.stats.callbacks
            stub.lookup(session, table, 3)
            assert pair.network.stats.callbacks == callbacks
