"""Tests for the cyclic-graph workload."""

import pytest

from repro.bench.harness import FULLY_EAGER, FULLY_LAZY, PROPOSED
from repro.workloads.graphs import (
    GRAPH_OPS,
    bind_graph_server,
    build_random_graph,
    graph_client,
    graph_node_spec,
    local_reachable_weight,
    register_graph_types,
)
from repro.xdr.arch import SPARC32, X86_64


@pytest.fixture
def served(smart_pair):
    for runtime in (smart_pair.a, smart_pair.b):
        register_graph_types(runtime)
    bind_graph_server(smart_pair.b)
    smart_pair.a.import_interface(GRAPH_OPS)
    return smart_pair, graph_client(smart_pair.a, "B")


class TestBuilder:
    def test_deterministic_for_seed(self, smart_pair):
        register_graph_types(smart_pair.a)
        first = build_random_graph(smart_pair.a, 20, seed=3)
        total_one = local_reachable_weight(smart_pair.a, first[0])
        second = build_random_graph(smart_pair.a, 20, seed=3)
        total_two = local_reachable_weight(smart_pair.a, second[0])
        assert total_one == total_two

    def test_node_layout(self):
        spec = graph_node_spec()
        assert spec.sizeof(SPARC32) == 3 * 4 + 4 + 8  # padded to 8
        assert spec.sizeof(X86_64) == 3 * 8 + 8


class TestRemoteTraversal:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_remote_weight_matches_local_reference(self, served, seed):
        pair, stub = served
        nodes = build_random_graph(pair.a, 40, seed=seed)
        expected = local_reachable_weight(pair.a, nodes[0])
        with pair.a.session() as session:
            assert stub.reachable_weight(session, nodes[0]) == expected

    def test_cycles_terminate_remotely(self, served):
        pair, stub = served
        # Force a tight cycle: node0 -> node1 -> node0.
        spec = pair.a.resolver.resolve("graph_node")
        size = spec.sizeof(pair.a.arch)
        layout = spec.layout(pair.a.arch)
        first = pair.a.heap.malloc(size, "graph_node")
        second = pair.a.heap.malloc(size, "graph_node")
        for address, target, weight in (
            (first, second, 10),
            (second, first, 5),
        ):
            pair.a.codec.write_pointer(
                address + layout.offsets["edges"], target
            )
            for slot in (1, 2):
                pair.a.codec.write_pointer(
                    address + layout.offsets["edges"] + slot * 4, 0
                )
            pair.a.space.write_raw(
                address + layout.offsets["weight"],
                weight.to_bytes(8, pair.a.arch.byteorder, signed=True),
            )
        with pair.a.session() as session:
            assert stub.reachable_weight(session, first) == 15
            assert stub.reachable_count(session, first) == 2

    def test_shared_children_fetched_once(self, served):
        pair, stub = served
        nodes = build_random_graph(pair.a, 60, seed=9)
        with pair.a.session() as session:
            stub.reachable_count(session, nodes[0])
        # Entries transferred never exceeds distinct nodes + start dup
        assert pair.network.stats.entries_transferred <= 60

    def test_second_traversal_cached(self, served):
        pair, stub = served
        nodes = build_random_graph(pair.a, 30, seed=4)
        with pair.a.session() as session:
            stub.reachable_count(session, nodes[0])
            callbacks = pair.network.stats.callbacks
            stub.reachable_weight(session, nodes[0])
            assert pair.network.stats.callbacks == callbacks


class TestAcrossMethods:
    @pytest.mark.parametrize("method", [FULLY_EAGER, FULLY_LAZY,
                                        PROPOSED])
    def test_every_method_handles_cycles(self, method):
        from repro.bench.harness import make_world

        world = make_world(method)
        for runtime in (world.caller, world.callee):
            register_graph_types(runtime)
        bind_graph_server(world.callee)
        world.caller.import_interface(GRAPH_OPS)
        nodes = build_random_graph(world.caller, 25, seed=6)
        expected = local_reachable_weight(world.caller, nodes[0])
        stub = graph_client(world.caller, "B")
        with world.caller.session() as session:
            assert stub.reachable_weight(session, nodes[0]) == expected
