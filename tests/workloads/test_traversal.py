"""Tests for the tree traversal procedures."""

import pytest

from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
    visit_counts,
)
from repro.workloads.trees import build_complete_tree


@pytest.fixture
def served(smart_pair):
    root = build_complete_tree(smart_pair.a, 31)
    bind_tree_server(smart_pair.b)
    return smart_pair, root, tree_client(smart_pair.a, "B")


class TestSearch:
    @pytest.mark.parametrize("target", [0, 1, 10, 31])
    def test_search_checksum_matches_reference(self, served, target):
        pair, root, stub = served
        with pair.a.session() as session:
            assert stub.search(session, root, target) == (
                expected_search_checksum(target, 31)
            )

    def test_target_beyond_tree_visits_all(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            assert stub.search(session, root, 1000) == sum(range(31))


class TestSearchUpdate:
    def test_update_returns_pre_update_checksum(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            assert stub.search_update(session, root, 31) == sum(range(31))

    def test_second_pass_sees_updated_values(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            stub.search_update(session, root, 31)
            assert stub.search(session, root, 31) == sum(range(31)) + 31


class TestSearchRepeat:
    def test_repeat_sums_passes(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            assert stub.search_repeat(session, root, 31, 4) == (
                4 * sum(range(31))
            )

    def test_repeats_are_cached(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            stub.search_repeat(session, root, 31, 1)
            callbacks_first = pair.network.stats.callbacks
            stub.search_repeat(session, root, 31, 3)
            assert pair.network.stats.callbacks == callbacks_first


class TestPathSearch:
    def test_deterministic_for_seed(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            first = stub.path_search(session, root, 5, 42)
        with pair.a.session() as session:
            second = stub.path_search(session, root, 5, 42)
        assert first == second

    def test_different_seeds_usually_differ(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            first = stub.path_search(session, root, 5, 1)
            second = stub.path_search(session, root, 5, 2)
        assert first != second

    def test_path_always_includes_root(self, served):
        pair, root, stub = served
        with pair.a.session() as session:
            # one path: checksum >= root index (0) and visits depth+1
            # nodes; with a 31-node tree every path has 5 nodes.
            checksum = stub.path_search(session, root, 1, 7)
        assert checksum > 0


class TestVisitCounts:
    def test_ratio_to_target(self):
        assert visit_counts(0.0, 100)["target_nodes"] == 0
        assert visit_counts(0.5, 100)["target_nodes"] == 50
        assert visit_counts(1.0, 100)["target_nodes"] == 100

    def test_clamped(self):
        assert visit_counts(2.0, 100)["target_nodes"] == 100
        assert visit_counts(-1.0, 100)["target_nodes"] == 0


class TestReferenceChecksum:
    def test_matches_manual_small_case(self):
        # DFS left-first on a 3-node heap tree: 0, 1, 2
        assert expected_search_checksum(3, 3) == 3
        # first two visits: 0 then 1
        assert expected_search_checksum(2, 3) == 1
