"""Tests for the data-plane batch protocol."""

import pytest

from repro.smartrpc import transfer
from repro.smartrpc.closure import ClosureItem
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import HandlePool, LongPointer
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import OpaqueType, int32


@pytest.fixture
def worlds(smart_pair):
    """A home (A) with a 7-node tree and a callee state on B."""
    root = build_complete_tree(smart_pair.a, 7)
    state_a = smart_pair.a.ensure_smart_session("sess", "A")
    state_b = smart_pair.b.ensure_smart_session("sess", "A")
    return smart_pair, root, state_a, state_b


def home_items(runtime, state, addresses):
    spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    return [
        ClosureItem(
            LongPointer("A", address, TREE_NODE_TYPE_ID), spec, address
        )
        for address in addresses
    ]


class TestBatchRoundTrip:
    def test_apply_installs_data_and_placeholders(self, worlds):
        pair, root, state_a, state_b = worlds
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        applied = transfer.apply_batch(pair.b, state_b, batch, False)
        assert applied == 1
        root_entry = state_b.cache.table.entry_for(
            LongPointer("A", root, TREE_NODE_TYPE_ID)
        )
        assert root_entry is not None and root_entry.resident
        # The root's two children were swizzled into placeholders.
        assert len(state_b.cache.table) == 3

    def test_data_decoded_into_callee_layout(self, worlds):
        pair, root, state_a, state_b = worlds
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        transfer.apply_batch(pair.b, state_b, batch, False)
        entry = state_b.cache.table.entry_for(
            LongPointer("A", root, TREE_NODE_TYPE_ID)
        )
        spec = pair.b.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(pair.b.arch)
        data = pair.b.space.read_raw(
            entry.local_address + layout.offsets["data"], 8
        )
        assert int.from_bytes(data, "big") == 0  # root holds index 0

    def test_resident_duplicate_skipped_without_overwrite(self, worlds):
        pair, root, state_a, state_b = worlds
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        transfer.apply_batch(pair.b, state_b, batch, False)
        before = pair.network.stats.duplicate_entries
        applied = transfer.apply_batch(pair.b, state_b, batch, False)
        assert applied == 0
        assert pair.network.stats.duplicate_entries == before + 1

    def test_overwrite_refreshes_resident_data(self, worlds):
        pair, root, state_a, state_b = worlds
        items = home_items(pair.a, state_a, [root])
        batch = transfer.encode_batch(pair.a, state_a, items)
        transfer.apply_batch(pair.b, state_b, batch, False)
        # mutate the home original, re-ship with overwrite
        spec = pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(pair.a.arch)
        pair.a.space.write_raw(
            root + layout.offsets["data"], (99).to_bytes(8, "big")
        )
        batch2 = transfer.encode_batch(pair.a, state_a, items)
        transfer.apply_batch(pair.b, state_b, batch2, True)
        entry = state_b.cache.table.entry_for(
            LongPointer("A", root, TREE_NODE_TYPE_ID)
        )
        b_layout = pair.b.resolver.resolve(TREE_NODE_TYPE_ID).layout(
            pair.b.arch
        )
        data = pair.b.space.read_raw(
            entry.local_address + b_layout.offsets["data"], 8
        )
        assert int.from_bytes(data, "big") == 99

    def test_overwrite_joins_relayed_dirty_set(self, worlds):
        pair, root, state_a, state_b = worlds
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        transfer.apply_batch(pair.b, state_b, batch, True)
        entry = state_b.cache.table.entry_for(
            LongPointer("A", root, TREE_NODE_TYPE_ID)
        )
        assert entry in state_b.relayed_dirty

    def test_home_receiving_batch_updates_original(self, worlds):
        pair, root, state_a, state_b = worlds
        # B receives the root, then ships it back modified: A's
        # original must change.
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        transfer.apply_batch(pair.b, state_b, batch, False)
        entry = state_b.cache.table.entry_for(
            LongPointer("A", root, TREE_NODE_TYPE_ID)
        )
        spec_b = pair.b.resolver.resolve(TREE_NODE_TYPE_ID)
        layout_b = spec_b.layout(pair.b.arch)
        pair.b.space.write_raw(
            entry.local_address + layout_b.offsets["data"],
            (1234).to_bytes(8, "big"),
        )
        item = ClosureItem(entry.pointer, spec_b, entry.local_address)
        back = transfer.encode_batch(pair.b, state_b, [item])
        transfer.apply_batch(pair.a, state_a, back, True)
        spec_a = pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        layout_a = spec_a.layout(pair.a.arch)
        data = pair.a.space.read_raw(root + layout_a.offsets["data"], 8)
        assert int.from_bytes(data, "big") == 1234

    def test_batch_updating_dead_home_data_rejected(self, worlds):
        pair, root, state_a, state_b = worlds
        address = pair.a.malloc(TREE_NODE_TYPE_ID)
        spec = pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        item = ClosureItem(
            LongPointer("A", address, TREE_NODE_TYPE_ID), spec, address
        )
        batch = transfer.encode_batch(pair.a, state_a, [item])
        pair.a.heap.free(address)
        with pytest.raises(SmartRpcError):
            transfer.apply_batch(pair.a, state_a, batch, True)


class TestSkipValue:
    def test_skip_consumes_exact_bytes(self):
        from repro.xdr.types import (
            ArrayType,
            Field,
            PointerType,
            StructType,
        )

        spec = StructType("s", [
            Field("a", int32),
            Field("p", PointerType("s")),
            Field("o", OpaqueType(6)),
            Field("arr", ArrayType(int32, 2)),
        ])
        pool = HandlePool()
        encoder = XdrEncoder()
        encoder.pack_int32(1)
        from repro.smartrpc.long_pointer import encode_long_pointer_pooled

        encode_long_pointer_pooled(
            encoder, LongPointer("A", 8, "s"), pool
        )
        encoder.pack_fixed_opaque(b"abcdef")
        encoder.pack_int32(2)
        encoder.pack_int32(3)
        decoder = XdrDecoder(encoder.getvalue())
        transfer.skip_value(decoder, spec, pool)
        decoder.expect_done()

    def test_skip_does_not_swizzle(self, worlds):
        pair, root, state_a, state_b = worlds
        batch = transfer.encode_batch(
            pair.a, state_a, home_items(pair.a, state_a, [root])
        )
        transfer.apply_batch(pair.b, state_b, batch, False)
        entries_before = len(state_b.cache.table)
        transfer.apply_batch(pair.b, state_b, batch, False)  # all dup
        assert len(state_b.cache.table) == entries_before


class TestRequestProtocol:
    def test_request_fetches_and_counts_callback(self, worlds):
        pair, root, state_a, state_b = worlds
        pointer = LongPointer("A", root, TREE_NODE_TYPE_ID)
        state_b.cache.ensure_entry(pointer)
        before = pair.network.stats.callbacks
        applied = transfer.request_data(pair.b, state_b, "A", [pointer])
        assert applied >= 1
        assert pair.network.stats.callbacks == before + 1
        assert state_b.cache.table.entry_for(pointer).resident

    def test_request_with_closure_prefetches(self, worlds):
        pair, root, state_a, state_b = worlds
        pair.b.closure_size = 16 * 7  # whole 7-node tree
        pointer = LongPointer("A", root, TREE_NODE_TYPE_ID)
        state_b.cache.ensure_entry(pointer)
        applied = transfer.request_data(pair.b, state_b, "A", [pointer])
        assert applied == 7

    def test_request_to_wrong_home_rejected(self, worlds):
        pair, root, state_a, state_b = worlds
        pointer = LongPointer("A", root, TREE_NODE_TYPE_ID)
        with pytest.raises(SmartRpcError):
            transfer.request_data(pair.b, state_b, "NS", [pointer])

    def test_request_for_dead_data_reports_error(self, worlds):
        pair, root, state_a, state_b = worlds
        address = pair.a.malloc(TREE_NODE_TYPE_ID)
        pointer = LongPointer("A", address, TREE_NODE_TYPE_ID)
        pair.a.heap.free(address)
        with pytest.raises(SmartRpcError) as info:
            transfer.request_data(pair.b, state_b, "A", [pointer])
        assert "dead home data" in str(info.value)
