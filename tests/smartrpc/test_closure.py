"""Tests for the bounded transitive-closure walker."""

import pytest

from repro.smartrpc.closure import (
    BREADTH_FIRST,
    DEPTH_FIRST,
    ClosureWalker,
)
from repro.smartrpc.errors import DanglingPointerError, SmartRpcError
from repro.smartrpc.long_pointer import LongPointer
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree


@pytest.fixture
def home(smart_pair):
    """Runtime A with a 15-node tree and an open session."""
    root = build_complete_tree(smart_pair.a, 15)
    state = smart_pair.a.ensure_smart_session("sess", "A")
    return smart_pair.a, state, root


def walker(runtime, state, budget, order=BREADTH_FIRST):
    return ClosureWalker(runtime, state, budget, order=order)


def root_pointer(runtime, root):
    return LongPointer(runtime.site_id, root, TREE_NODE_TYPE_ID)


NODE = 16  # bytes per node on the SPARC home


class TestBudget:
    def test_zero_budget_sends_roots_only(self, home):
        runtime, state, root = home
        items = walker(runtime, state, 0).walk([root_pointer(runtime, root)])
        assert len(items) == 1
        assert items[0].pointer.address == root

    def test_budget_counts_bytes(self, home):
        runtime, state, root = home
        items = walker(runtime, state, 5 * NODE).walk(
            [root_pointer(runtime, root)]
        )
        assert len(items) == 5

    def test_budget_larger_than_graph_sends_everything(self, home):
        runtime, state, root = home
        items = walker(runtime, state, 10**6).walk(
            [root_pointer(runtime, root)]
        )
        assert len(items) == 15

    def test_roots_always_included_even_over_budget(self, home):
        runtime, state, root = home
        pointers = [root_pointer(runtime, root)]
        # add the two children as roots as well
        left = runtime.codec.read_pointer(root)
        right = runtime.codec.read_pointer(root + 4)
        pointers += [
            LongPointer("A", left, TREE_NODE_TYPE_ID),
            LongPointer("A", right, TREE_NODE_TYPE_ID),
        ]
        items = walker(runtime, state, 0).walk(pointers)
        assert len(items) == 3

    def test_negative_budget_rejected(self, home):
        runtime, state, root = home
        with pytest.raises(SmartRpcError):
            walker(runtime, state, -1)


class TestTraversalOrder:
    def test_bfs_visits_level_by_level(self, home):
        runtime, state, root = home
        items = walker(runtime, state, 7 * NODE).walk(
            [root_pointer(runtime, root)]
        )
        data = [
            runtime.space.read_raw(item.address + 8, 8) for item in items
        ]
        indices = [int.from_bytes(d, "big") for d in data]
        assert indices == [0, 1, 2, 3, 4, 5, 6]  # heap order = BFS order

    def test_dfs_dives_deep_first(self, home):
        runtime, state, root = home
        items = walker(runtime, state, 4 * NODE, DEPTH_FIRST).walk(
            [root_pointer(runtime, root)]
        )
        indices = [
            int.from_bytes(
                runtime.space.read_raw(item.address + 8, 8), "big"
            )
            for item in items
        ]
        assert indices[0] == 0
        # depth-first from the root follows one branch downward
        assert indices[1] in (1, 2)
        child = indices[1]
        assert indices[2] in (2 * child + 1, 2 * child + 2)

    def test_unknown_order_rejected(self, home):
        runtime, state, root = home
        with pytest.raises(SmartRpcError):
            walker(runtime, state, 0, order="sideways")


class TestSharingAndCycles:
    def test_shared_child_sent_once(self, smart_pair):
        runtime = smart_pair.a
        state = runtime.ensure_smart_session("sess", "A")
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        size = spec.sizeof(runtime.arch)
        parent = runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        shared = runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        runtime.codec.write_pointer(parent, shared)      # left
        runtime.codec.write_pointer(parent + 4, shared)  # right
        runtime.codec.write_pointer(shared, 0)
        runtime.codec.write_pointer(shared + 4, 0)
        items = walker(runtime, state, 10**6).walk(
            [LongPointer("A", parent, TREE_NODE_TYPE_ID)]
        )
        assert len(items) == 2

    def test_cycle_terminates(self, smart_pair):
        runtime = smart_pair.a
        state = runtime.ensure_smart_session("sess", "A")
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        size = spec.sizeof(runtime.arch)
        first = runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        second = runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        runtime.codec.write_pointer(first, second)
        runtime.codec.write_pointer(second, first)  # cycle
        items = walker(runtime, state, 10**6).walk(
            [LongPointer("A", first, TREE_NODE_TYPE_ID)]
        )
        assert len(items) == 2


class TestErrors:
    def test_dangling_root_rejected(self, home):
        runtime, state, root = home
        with pytest.raises(DanglingPointerError):
            walker(runtime, state, 0).walk(
                [LongPointer("A", 0x99999, TREE_NODE_TYPE_ID)]
            )

    def test_non_home_root_rejected(self, home):
        runtime, state, root = home
        with pytest.raises(SmartRpcError):
            walker(runtime, state, 0).walk(
                [LongPointer("Z", 0x1000, TREE_NODE_TYPE_ID)]
            )

    def test_interior_root_rejected(self, home):
        runtime, state, root = home
        with pytest.raises(DanglingPointerError):
            walker(runtime, state, 0).walk(
                [LongPointer("A", root + 4, TREE_NODE_TYPE_ID)]
            )

    def test_pointer_into_foreign_cache_not_traversed(self, smart_pair):
        """A home serves only its own heap; pointers into its cache of a
        third space are left for the requester to chase."""
        runtime = smart_pair.a
        state = runtime.ensure_smart_session("sess", "A")
        spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
        size = spec.sizeof(runtime.arch)
        parent = runtime.heap.malloc(size, TREE_NODE_TYPE_ID)
        # cache entry for data homed on Z
        foreign = LongPointer("Z", 0x5000, TREE_NODE_TYPE_ID)
        entry = state.cache.ensure_entry(foreign)
        runtime.codec.write_pointer(parent, entry.local_address)
        runtime.codec.write_pointer(parent + 4, 0)
        items = walker(runtime, state, 10**6).walk(
            [LongPointer("A", parent, TREE_NODE_TYPE_ID)]
        )
        assert len(items) == 1  # only the parent is served
