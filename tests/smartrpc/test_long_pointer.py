"""Tests for long pointers and their encodings."""

import pytest

from repro.smartrpc.long_pointer import (
    PROVISIONAL_BASE,
    HandlePool,
    LongPointer,
    decode_long_pointer,
    decode_long_pointer_pooled,
    encode_long_pointer,
    encode_long_pointer_pooled,
)
from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder


class TestLongPointer:
    def test_fields(self):
        pointer = LongPointer("A", 0x1000, "node")
        assert pointer.space_id == "A"
        assert pointer.address == 0x1000
        assert pointer.type_id == "node"

    def test_equality_and_hash(self):
        first = LongPointer("A", 1, "t")
        second = LongPointer("A", 1, "t")
        assert first == second
        assert hash(first) == hash(second)
        assert first != LongPointer("B", 1, "t")

    def test_zero_address_rejected(self):
        with pytest.raises(XdrError):
            LongPointer("A", 0, "t")

    def test_negative_address_rejected(self):
        with pytest.raises(XdrError):
            LongPointer("A", -4, "t")

    def test_provisional_detection(self):
        assert LongPointer("A", PROVISIONAL_BASE, "t").is_provisional
        assert not LongPointer("A", 0x1000, "t").is_provisional

    def test_with_address_repoints(self):
        provisional = LongPointer("A", PROVISIONAL_BASE + 5, "t")
        real = provisional.with_address(0x2000)
        assert real.address == 0x2000
        assert real.space_id == "A" and real.type_id == "t"
        assert not real.is_provisional


class TestPlainEncoding:
    def test_round_trip(self):
        pointer = LongPointer("site-9", 0xABCDEF, "some_type")
        encoder = XdrEncoder()
        encode_long_pointer(encoder, pointer)
        decoder = XdrDecoder(encoder.getvalue())
        assert decode_long_pointer(decoder) == pointer
        decoder.expect_done()

    def test_null_round_trip(self):
        encoder = XdrEncoder()
        encode_long_pointer(encoder, None)
        assert decode_long_pointer(XdrDecoder(encoder.getvalue())) is None


class TestHandlePool:
    def test_intern_is_stable(self):
        pool = HandlePool()
        first = pool.intern("A", "t")
        second = pool.intern("A", "t")
        assert first == second
        assert pool.intern("B", "t") != first

    def test_handles_start_at_one(self):
        pool = HandlePool()
        assert pool.intern("A", "t") == 1  # zero is NULL

    def test_lookup_round_trip(self):
        pool = HandlePool()
        handle = pool.intern("A", "t")
        assert pool.lookup(handle) == ("A", "t")

    def test_bad_handle_rejected(self):
        pool = HandlePool()
        with pytest.raises(XdrError):
            pool.lookup(1)
        with pytest.raises(XdrError):
            pool.lookup(0)

    def test_pool_encoding_round_trip(self):
        pool = HandlePool()
        pool.intern("A", "t1")
        pool.intern("B", "t2")
        encoder = XdrEncoder()
        pool.encode(encoder)
        decoded = HandlePool.decode(XdrDecoder(encoder.getvalue()))
        assert len(decoded) == 2
        assert decoded.lookup(1) == ("A", "t1")
        assert decoded.lookup(2) == ("B", "t2")


class TestPooledEncoding:
    def test_round_trip(self):
        pool = HandlePool()
        pointer = LongPointer("A", 0x4444, "node")
        encoder = XdrEncoder()
        encode_long_pointer_pooled(encoder, pointer, pool)
        decoder = XdrDecoder(encoder.getvalue())
        assert decode_long_pointer_pooled(decoder, pool) == pointer

    def test_null_is_four_bytes(self):
        encoder = XdrEncoder()
        encode_long_pointer_pooled(encoder, None, HandlePool())
        assert encoder.getvalue() == b"\x00\x00\x00\x00"

    def test_pointer_is_twelve_bytes(self):
        pool = HandlePool()
        encoder = XdrEncoder()
        encode_long_pointer_pooled(
            encoder, LongPointer("A", 1, "t"), pool
        )
        assert len(encoder.getvalue()) == 12

    def test_pool_shared_across_pointers(self):
        pool = HandlePool()
        encoder = XdrEncoder()
        for address in (1, 2, 3):
            encode_long_pointer_pooled(
                encoder, LongPointer("A", address, "t"), pool
            )
        assert len(pool) == 1  # one (space, type) pair interned once

    def test_provisional_address_rejected_on_wire(self):
        pointer = LongPointer("A", PROVISIONAL_BASE, "t")
        with pytest.raises(XdrError):
            encode_long_pointer_pooled(XdrEncoder(), pointer, HandlePool())

    def test_batch_of_mixed_pointers(self):
        pool = HandlePool()
        pointers = [
            LongPointer("A", 16, "t1"),
            None,
            LongPointer("B", 32, "t2"),
            LongPointer("A", 48, "t1"),
        ]
        encoder = XdrEncoder()
        for pointer in pointers:
            encode_long_pointer_pooled(encoder, pointer, pool)
        decoder = XdrDecoder(encoder.getvalue())
        out = [decode_long_pointer_pooled(decoder, pool) for _ in range(4)]
        assert out == pointers
        decoder.expect_done()
