"""Tests for the session invariant validator."""

import pytest

from repro.memory.page import Protection
from repro.smartrpc.long_pointer import LongPointer
from repro.smartrpc.validate import (
    InvariantViolation,
    session_diagnostics,
    validate_session,
)
from repro.workloads.traversal import bind_tree_server, tree_client
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree


@pytest.fixture
def active(smart_pair):
    """A session mid-flight with cached and dirty data on B."""
    root = build_complete_tree(smart_pair.a, 15)
    bind_tree_server(smart_pair.b)
    stub = tree_client(smart_pair.a, "B")
    session = smart_pair.a.session()
    session.__enter__()
    stub.search_update(session, root, 15)
    state_b = smart_pair.b.session_state(session.session_id)
    yield smart_pair, state_b
    session.__exit__(None, None, None)


class TestCleanStates:
    def test_fresh_session_valid(self, smart_pair):
        state = smart_pair.b.ensure_smart_session("s", "A")
        checks = validate_session(smart_pair.b, state)
        assert "rows-within-owned-pages" in checks

    def test_session_with_cache_and_dirt_valid(self, active):
        pair, state = active
        checks = validate_session(pair.b, state)
        assert "protection-matches-residency" in checks
        assert "single-home-pages" in checks

    def test_all_examples_of_usage_stay_valid(self, smart_pair):
        state = smart_pair.b.ensure_smart_session("s", "A")
        state.cache.ensure_entry(
            LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        )
        validate_session(smart_pair.b, state)


class TestViolationsDetected:
    def test_wrong_protection_detected(self, active):
        pair, state = active
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        with pytest.raises(InvariantViolation):
            validate_session(pair.b, state)

    def test_incomplete_page_unprotected_detected(self, smart_pair):
        state = smart_pair.b.ensure_smart_session("s", "A")
        entry = state.cache.ensure_entry(
            LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        )
        smart_pair.b.space.protect(
            entry.page_number, Protection.READ_WRITE
        )
        with pytest.raises(InvariantViolation):
            validate_session(smart_pair.b, state)

    def test_mixed_home_page_detected(self, smart_pair):
        state = smart_pair.b.ensure_smart_session("s", "A")
        entry = state.cache.ensure_entry(
            LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        )
        # Forge a second-entry row on the same page with another home.
        from repro.smartrpc.alloc_table import AllocEntry

        forged = AllocEntry(
            pointer=LongPointer("Z", 0x2000, TREE_NODE_TYPE_ID),
            local_address=entry.local_address + entry.size,
            size=entry.size,
            page_number=entry.page_number,
            offset=entry.offset + entry.size,
        )
        state.cache.table.add(forged)
        state.cache.page_state(entry.page_number).entries.append(forged)
        with pytest.raises(InvariantViolation):
            validate_session(smart_pair.b, state)

    def test_dead_relayed_entry_detected(self, active):
        pair, state = active
        entry = next(iter(state.cache.table))
        state.relayed_dirty.add(entry)
        state.cache.table.remove(entry)
        with pytest.raises(InvariantViolation):
            validate_session(pair.b, state)


class TestStructuredDiagnostics:
    def test_clean_session_yields_no_diagnostics(self, active):
        pair, state = active
        assert session_diagnostics(pair.b, state) == []

    def test_violation_reported_under_rule_code(self, active):
        pair, state = active
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        findings = session_diagnostics(pair.b, state)
        assert [d.code for d in findings] == ["SRPC203"]
        assert findings[0].data["page"] == dirty_page

    def test_all_violations_collected_not_just_first(self, active):
        pair, state = active
        # Break two independent invariants at once.
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        entry = next(iter(state.cache.table))
        state.relayed_dirty.add(entry)
        state.cache.table.remove(entry)
        findings = session_diagnostics(pair.b, state)
        assert {d.code for d in findings} >= {"SRPC203", "SRPC206"}

    def test_raised_violation_carries_diagnostics(self, active):
        pair, state = active
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        with pytest.raises(InvariantViolation) as excinfo:
            validate_session(pair.b, state)
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].code == "SRPC203"

    def test_feeds_external_collector(self, active):
        from repro.analysis.diagnostics import DiagnosticCollector

        pair, state = active
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        collector = DiagnosticCollector()
        returned = session_diagnostics(pair.b, state, collector)
        assert collector.diagnostics == returned

    def test_suppression_applies_to_session_rules(self, active):
        from repro.analysis.diagnostics import DiagnosticCollector

        pair, state = active
        dirty_page = next(iter(state.cache.dirty_pages))
        pair.b.space.protect(dirty_page, Protection.READ)
        collector = DiagnosticCollector(suppress=["SRPC203"])
        assert session_diagnostics(pair.b, state, collector) == []
