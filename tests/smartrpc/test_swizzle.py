"""Tests for pointer swizzling and unswizzling."""

import pytest

from repro.smartrpc.errors import DanglingPointerError, SwizzleError
from repro.smartrpc.long_pointer import LongPointer
from repro.workloads.trees import TREE_NODE_TYPE_ID


@pytest.fixture
def state(smart_pair):
    return smart_pair.b.ensure_smart_session("sess", "A")


class TestUnswizzle:
    def test_null_pointer(self, state):
        assert state.swizzler.unswizzle(0) is None

    def test_local_heap_allocation(self, smart_pair, state):
        address = smart_pair.b.malloc(TREE_NODE_TYPE_ID)
        pointer = state.swizzler.unswizzle(address)
        assert pointer == LongPointer("B", address, TREE_NODE_TYPE_ID)

    def test_cache_entry_returns_original_long_pointer(self, state):
        remote = LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        entry = state.cache.ensure_entry(remote)
        assert state.swizzler.unswizzle(entry.local_address) == remote

    def test_interior_pointer_into_cache_rejected(self, state):
        remote = LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        entry = state.cache.ensure_entry(remote)
        with pytest.raises(SwizzleError):
            state.swizzler.unswizzle(entry.local_address + 4)

    def test_interior_pointer_into_heap_rejected(self, smart_pair, state):
        address = smart_pair.b.malloc(TREE_NODE_TYPE_ID)
        with pytest.raises(SwizzleError):
            state.swizzler.unswizzle(address + 4)

    def test_wild_pointer_rejected(self, state):
        with pytest.raises(SwizzleError):
            state.swizzler.unswizzle(0xDEAD0000)

    def test_freed_heap_pointer_rejected(self, smart_pair, state):
        address = smart_pair.b.malloc(TREE_NODE_TYPE_ID)
        smart_pair.b.heap.free(address)
        with pytest.raises(SwizzleError):
            state.swizzler.unswizzle(address)


class TestSwizzle:
    def test_null(self, state):
        assert state.swizzler.swizzle(None) == 0

    def test_remote_pointer_allocates_placeholder(self, state):
        remote = LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        local = state.swizzler.swizzle(remote)
        entry = state.cache.table.entry_for(remote)
        assert entry is not None and entry.local_address == local

    def test_swizzle_is_cached(self, state):
        remote = LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        assert state.swizzler.swizzle(remote) == state.swizzler.swizzle(
            remote
        )

    def test_home_pointer_is_original_address(self, smart_pair):
        state_a = smart_pair.a.ensure_smart_session("sess", "A")
        address = smart_pair.a.malloc(TREE_NODE_TYPE_ID)
        pointer = LongPointer("A", address, TREE_NODE_TYPE_ID)
        assert state_a.swizzler.swizzle(pointer) == address

    def test_home_pointer_to_dead_data_rejected(self, smart_pair):
        state_a = smart_pair.a.ensure_smart_session("sess", "A")
        address = smart_pair.a.malloc(TREE_NODE_TYPE_ID)
        smart_pair.a.heap.free(address)
        pointer = LongPointer("A", address, TREE_NODE_TYPE_ID)
        with pytest.raises(DanglingPointerError):
            state_a.swizzler.swizzle(pointer)

    def test_round_trip_remote(self, state):
        remote = LongPointer("A", 0x1000, TREE_NODE_TYPE_ID)
        local = state.swizzler.swizzle(remote)
        assert state.swizzler.unswizzle(local) == remote
