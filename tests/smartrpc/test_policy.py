"""Unit tests for the transfer-policy layer.

Three concerns: preset construction (each named policy carries the
decisions of the system it models), adaptive feedback dynamics (the
budget drifts with the shipped-vs-touched ratio), and end-to-end
wiring (the runtime consults the policy and traces its decisions).
"""

import pytest

from repro.bench.harness import (
    PROPOSED,
    make_world,
    run_hash_call,
    run_tree_call,
)
from repro.simnet.stats import TransferLedger
from repro.smartrpc.cache import ISOLATED, SINGLE_HOME
from repro.smartrpc.closure import BREADTH_FIRST, DEPTH_FIRST
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.hints import ClosureHints
from repro.smartrpc.policy import (
    DEFAULT_CLOSURE_SIZE,
    GRAPHCOPY,
    POLICY_NAMES,
    SWIZZLE,
    UNBOUNDED,
    AdaptivePolicy,
    FixedPolicy,
    GraphcopyPolicy,
    make_policy,
)


class FakeState:
    """Just enough of ``SmartSessionState`` for ``request_budget``."""

    def __init__(self):
        self.policy_data = {}
        self.transfer_stats = TransferLedger()

    def prefetch(self, shipped, touched):
        self.transfer_stats.record_shipped(shipped, prefetched=True)
        if touched:
            self.transfer_stats.record_touched(touched, prefetched=True)


class TestPresets:
    def test_every_preset_has_a_factory(self):
        assert POLICY_NAMES == (
            "adaptive",
            "eager",
            "fixed",
            "graphcopy",
            "hinted",
            "lazy",
            "paper",
            "pipelined",
        )

    def test_paper_is_the_fixed_default_closure(self):
        policy = make_policy("paper")
        assert policy.name == "paper"
        assert policy.declared_budget == DEFAULT_CLOSURE_SIZE
        assert policy.marshalling == SWIZZLE
        assert policy.coherency is True
        assert policy.allocation_strategy == SINGLE_HOME
        assert policy.closure_order == BREADTH_FIRST

    def test_lazy_is_budget_zero_with_isolated_pages(self):
        policy = make_policy("lazy")
        assert policy.declared_budget == 0
        assert policy.allocation_strategy == ISOLATED
        assert policy.coherency is True

    def test_eager_is_the_unbounded_spectrum_endpoint(self):
        policy = make_policy("eager")
        assert policy.declared_budget == UNBOUNDED
        assert policy.marshalling == SWIZZLE

    def test_graphcopy_is_deep_copy_without_coherency(self):
        policy = make_policy("graphcopy")
        assert isinstance(policy, GraphcopyPolicy)
        assert policy.marshalling == GRAPHCOPY
        assert policy.coherency is False
        assert policy.declared_budget is None

    def test_graphcopy_has_no_data_plane_to_budget(self):
        with pytest.raises(SmartRpcError):
            make_policy("graphcopy").request_budget(FakeState())

    def test_hinted_carries_its_hints(self):
        hints = ClosureHints()
        policy = make_policy("hinted", closure_hints=hints)
        assert policy.hints is hints
        assert policy.declared_budget == DEFAULT_CLOSURE_SIZE

    def test_adaptive_declares_a_variable_budget(self):
        policy = make_policy("adaptive")
        assert policy.declared_budget is None
        assert policy.marshalling == SWIZZLE

    def test_fixed_takes_an_arbitrary_budget(self):
        policy = make_policy("fixed", closure_size=123)
        assert policy.declared_budget == 123

    def test_describe_is_the_trace_declaration(self):
        described = make_policy("paper").describe()
        assert described == {
            "policy": "paper",
            "budget": DEFAULT_CLOSURE_SIZE,
            "marshalling": SWIZZLE,
            "coherency": True,
            "order": BREADTH_FIRST,
            "strategy": SINGLE_HOME,
            "batch_window": 0,
            "max_inflight": 0,
            "prefetch_depth": 0,
            "session_deadline": 0.0,
            "exchange_timeout": 0.0,
            "orphan_grace": 0.0,
        }


class TestMakePolicyErrors:
    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError):
            make_policy("telepathy")

    def test_lazy_pins_budget_zero(self):
        with pytest.raises(SmartRpcError):
            make_policy("lazy", closure_size=4096)
        assert make_policy("lazy", closure_size=0).declared_budget == 0

    def test_eager_pins_the_unbounded_budget(self):
        with pytest.raises(SmartRpcError):
            make_policy("eager", closure_size=4096)
        policy = make_policy("eager", closure_size=UNBOUNDED)
        assert policy.declared_budget == UNBOUNDED

    def test_graphcopy_rejects_every_knob(self):
        with pytest.raises(SmartRpcError):
            make_policy("graphcopy", closure_size=8192)
        with pytest.raises(SmartRpcError):
            make_policy("graphcopy", closure_order=DEPTH_FIRST)

    def test_hinted_requires_hints(self):
        with pytest.raises(SmartRpcError):
            make_policy("hinted")

    def test_budget_bounds(self):
        with pytest.raises(SmartRpcError):
            FixedPolicy(-1)
        with pytest.raises(SmartRpcError):
            FixedPolicy(UNBOUNDED + 1)

    def test_bad_knob_values(self):
        with pytest.raises(SmartRpcError):
            make_policy("paper", allocation_strategy="scattered")
        with pytest.raises(SmartRpcError):
            make_policy("paper", closure_order="random")

    def test_bad_adaptive_bounds(self):
        with pytest.raises(SmartRpcError):
            AdaptivePolicy(min_budget=0)
        with pytest.raises(SmartRpcError):
            AdaptivePolicy(min_budget=1024, max_budget=512)


class TestPolicyCopies:
    def test_fresh_is_an_independent_copy(self):
        policy = make_policy("paper")
        twin = policy.fresh()
        assert twin is not policy
        twin.set_budget(64)
        assert policy.declared_budget == DEFAULT_CLOSURE_SIZE

    def test_pinned_presets_refuse_budget_changes(self):
        for name in ("lazy", "eager"):
            with pytest.raises(SmartRpcError):
                make_policy(name).set_budget(4096)

    def test_sweepable_presets_accept_budget_changes(self):
        policy = make_policy("paper")
        policy.set_budget(64)
        assert policy.declared_budget == 64


class TestAdaptiveDynamics:
    def test_initial_budget_until_the_window_fills(self):
        policy = AdaptivePolicy(initial=8192, window=1024)
        state = FakeState()
        assert policy.request_budget(state) == 8192
        state.prefetch(1000, 0)  # below the window: no verdict yet
        assert policy.request_budget(state) == 8192

    def test_wasted_prefetch_halves_the_budget(self):
        policy = AdaptivePolicy(initial=8192, window=1024)
        state = FakeState()
        state.prefetch(2048, 0)
        assert policy.request_budget(state) == 4096

    def test_useful_prefetch_doubles_the_budget(self):
        policy = AdaptivePolicy(initial=8192, window=1024)
        state = FakeState()
        state.prefetch(2048, 2048)
        assert policy.request_budget(state) == 16384

    def test_mid_band_ratio_holds_steady(self):
        policy = AdaptivePolicy(initial=8192, window=1024)
        state = FakeState()
        state.prefetch(2048, 1024)  # ratio 0.5: inside the deadband
        assert policy.request_budget(state) == 8192

    def test_budget_floors_at_min(self):
        policy = AdaptivePolicy(initial=512, min_budget=256, window=512)
        state = FakeState()
        state.prefetch(512, 0)
        assert policy.request_budget(state) == 256
        state.prefetch(512, 0)
        assert policy.request_budget(state) == 256

    def test_budget_caps_at_max(self):
        policy = AdaptivePolicy(
            initial=1 << 19, max_budget=1 << 20, window=512
        )
        state = FakeState()
        state.prefetch(512, 512)
        assert policy.request_budget(state) == 1 << 20
        state.prefetch(512, 512)
        assert policy.request_budget(state) == 1 << 20

    def test_each_window_is_judged_incrementally(self):
        """Old bytes are marked off after an adjustment: the next
        verdict sees only traffic since the last one."""
        policy = AdaptivePolicy(initial=8192, window=1024)
        state = FakeState()
        state.prefetch(2048, 0)
        assert policy.request_budget(state) == 4096
        # Touching the *old* waste later must not double the budget:
        # only a fresh window's worth of new traffic reopens the case.
        state.transfer_stats.record_touched(2048, prefetched=True)
        assert policy.request_budget(state) == 4096

    def test_sessions_tune_independently(self):
        policy = AdaptivePolicy(initial=8192, window=1024)
        wasteful, frugal = FakeState(), FakeState()
        wasteful.prefetch(2048, 0)
        assert policy.request_budget(wasteful) == 4096
        assert policy.request_budget(frugal) == 8192


class TestPolicyWiring:
    """The runtime consults the policy and traces its decisions."""

    def test_decisions_carry_the_requested_dfs_order(self):
        world = make_world(
            PROPOSED, closure_order=DEPTH_FIRST, trace=True
        )
        run_tree_call(world, 63, "search", ratio=1.0)
        decisions = [
            e for e in world.stats.events if e.category == "policy-decision"
        ]
        assert decisions
        for event in decisions:
            assert event.data["order"] == DEPTH_FIRST
            assert event.data["policy"] == "paper"

    def test_each_session_declares_its_policy(self):
        world = make_world("lazy", trace=True)
        run_tree_call(world, 15, "search", ratio=1.0)
        declarations = [
            e for e in world.stats.events if e.category == "policy"
        ]
        assert declarations
        for event in declarations:
            assert event.data["policy"] == "lazy"
            assert event.data["budget"] == 0

    def test_adaptive_decisions_record_varying_budgets(self):
        world = make_world("adaptive", trace=True)
        run_hash_call(world, 400, 12)
        budgets = [
            e.data["budget"]
            for e in world.stats.events
            if e.category == "policy-decision"
        ]
        assert budgets
        assert len(set(budgets)) > 1, budgets

    def test_adaptive_beats_the_fixed_default_on_hash_lookups(self):
        """The acceptance bar: at equal correctness, the adaptive
        budget moves fewer bytes than the paper's fixed 8192 on the
        sparse hash-retrieval workload."""
        adaptive = run_hash_call(make_world("adaptive"), 2000, 40)
        paper = run_hash_call(make_world(PROPOSED), 2000, 40)
        assert adaptive.result == paper.result
        assert adaptive.bytes_moved < paper.bytes_moved
        assert adaptive.prefetch_shipped < paper.prefetch_shipped

    def test_touched_ledger_never_exceeds_shipped(self):
        run = run_tree_call(make_world(PROPOSED), 63, "search", ratio=0.5)
        assert 0 < run.closure_touched <= run.closure_shipped
        assert 0 <= run.prefetch_touched <= run.prefetch_shipped
