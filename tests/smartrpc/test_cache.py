"""Tests for the cache manager: protected pages, fills, dirtiness."""

import pytest

from repro.memory.faults import AccessViolation, FaultKind
from repro.memory.page import Protection
from repro.smartrpc.cache import ISOLATED, MIXED, PACKED, CacheManager
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import LongPointer
from repro.workloads.trees import TREE_NODE_TYPE_ID


@pytest.fixture
def callee_state(smart_pair):
    """A session state on B (the callee side), plus a home tree on A."""
    return smart_pair.b.ensure_smart_session("sess-1", "A")


def remote_pointer(address=0x1000, type_id=TREE_NODE_TYPE_ID):
    return LongPointer("A", address, type_id)


class TestPlaceholderAllocation:
    def test_ensure_entry_allocates_protected_placeholder(
        self, smart_pair, callee_state
    ):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        assert not entry.resident
        space = smart_pair.b.space
        assert (
            space.protection_of(entry.page_number) is Protection.NONE
        )
        # x86-64 callee: the 16-byte SPARC node needs 24 local bytes.
        assert entry.size == 24

    def test_ensure_entry_reuses_existing(self, callee_state):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer())
        second = cache.ensure_entry(remote_pointer())
        assert first is second

    def test_same_page_for_same_episode(self, callee_state):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer(0x1000))
        second = cache.ensure_entry(remote_pointer(0x2000))
        assert first.page_number == second.page_number
        assert second.offset > first.offset

    def test_new_page_after_episode_finished(self, callee_state):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer(0x1000))
        cache.finish_datum()
        second = cache.ensure_entry(remote_pointer(0x2000))
        assert first.page_number != second.page_number

    def test_fresh_allocation_is_resident_dirty_writable(
        self, smart_pair, callee_state
    ):
        cache = callee_state.cache
        entry = cache.allocate_fresh(remote_pointer(0x9000), 24)
        assert entry.resident
        assert entry.page_number in cache.dirty_pages
        protection = smart_pair.b.space.protection_of(entry.page_number)
        assert protection is Protection.READ_WRITE

    def test_fresh_and_remote_never_share_pages(self, callee_state):
        cache = callee_state.cache
        placeholder = cache.ensure_entry(remote_pointer(0x1000))
        fresh = cache.allocate_fresh(remote_pointer(0x9000), 24)
        assert placeholder.page_number != fresh.page_number

    def test_span_allocation_for_large_data(self, smart_pair, callee_state):
        cache = callee_state.cache
        page_size = smart_pair.b.space.page_size
        entry = cache._allocate_span(
            remote_pointer(0x8000, "big"), page_size * 2 + 100, False
        )
        pages = cache._entry_pages(entry)
        assert len(pages) == 3
        for number in pages:
            assert cache.owns_page(number)

    def test_unknown_strategy_rejected(self, smart_pair, callee_state):
        with pytest.raises(SmartRpcError):
            CacheManager(smart_pair.b, callee_state, strategy="bogus")


class TestStrategies:
    def test_isolated_puts_each_entry_alone(self, smart_pair):
        state = smart_pair.add_runtime("C").ensure_smart_session("s", "A")
        state.cache.strategy = ISOLATED
        first = state.cache.ensure_entry(remote_pointer(0x1000))
        second = state.cache.ensure_entry(remote_pointer(0x2000))
        assert first.page_number != second.page_number

    def test_packed_keeps_page_open_across_datums(self, smart_pair):
        state = smart_pair.add_runtime("D").ensure_smart_session("s", "A")
        state.cache.strategy = PACKED
        first = state.cache.ensure_entry(remote_pointer(0x1000))
        state.cache.finish_datum()
        second = state.cache.ensure_entry(remote_pointer(0x2000))
        assert first.page_number == second.page_number
        state.cache.finish_batch()
        third = state.cache.ensure_entry(remote_pointer(0x3000))
        assert third.page_number != first.page_number

    def test_mixed_shares_page_across_homes(self, smart_pair):
        state = smart_pair.add_runtime("E").ensure_smart_session("s", "A")
        state.cache.strategy = MIXED
        first = state.cache.ensure_entry(remote_pointer(0x1000))
        second = state.cache.ensure_entry(
            LongPointer("Z", 0x1000, TREE_NODE_TYPE_ID)
        )
        assert first.page_number == second.page_number

    def test_single_home_separates_homes(self, callee_state):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer(0x1000))
        second = cache.ensure_entry(
            LongPointer("Z", 0x1000, TREE_NODE_TYPE_ID)
        )
        assert first.page_number != second.page_number


class TestResidencyAndRelease:
    def test_page_released_read_only_when_complete(
        self, smart_pair, callee_state
    ):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer(0x1000))
        second = cache.ensure_entry(remote_pointer(0x2000))
        cache.mark_resident(first)
        space = smart_pair.b.space
        assert space.protection_of(first.page_number) is Protection.NONE
        cache.mark_resident(second)
        assert space.protection_of(first.page_number) is Protection.READ

    def test_mark_resident_idempotent(self, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        cache.mark_resident(entry)
        cache.mark_resident(entry)
        assert entry.resident

    def test_release_entry_removes_rows(self, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        cache.release_entry(entry)
        assert cache.table.entry_for(entry.pointer) is None


class TestDirtiness:
    def test_write_fault_marks_page_dirty(self, smart_pair, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        cache.mark_resident(entry)
        cache.mark_dirty_page(entry.page_number)
        assert entry.page_number in cache.dirty_pages
        space = smart_pair.b.space
        assert (
            space.protection_of(entry.page_number)
            is Protection.READ_WRITE
        )

    def test_dirty_marking_idempotent(self, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        cache.mark_resident(entry)
        cache.mark_dirty_page(entry.page_number)
        cache.mark_dirty_page(entry.page_number)
        assert len(cache.dirty_pages) == 1

    def test_dirty_before_fill_rejected(self, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        with pytest.raises(SmartRpcError):
            cache.mark_dirty_page(entry.page_number)

    def test_dirty_entries_lists_page_contents(self, callee_state):
        cache = callee_state.cache
        first = cache.ensure_entry(remote_pointer(0x1000))
        second = cache.ensure_entry(remote_pointer(0x2000))
        for entry in (first, second):
            cache.mark_resident(entry)
        cache.mark_dirty_page(first.page_number)
        dirty = cache.dirty_entries()
        assert set(id(e) for e in dirty) == {id(first), id(second)}


class TestInvalidate:
    def test_invalidate_unmaps_and_clears(self, smart_pair, callee_state):
        cache = callee_state.cache
        entry = cache.ensure_entry(remote_pointer())
        page = entry.page_number
        cache.invalidate()
        assert not cache.owns_page(page)
        assert not smart_pair.b.space.is_mapped(page * 4096)
        assert len(cache.table) == 0
        assert cache.dirty_pages == set()

    def test_invalidate_counts_in_stats(self, smart_pair, callee_state):
        before = smart_pair.network.stats.invalidations
        callee_state.cache.invalidate()
        assert smart_pair.network.stats.invalidations == before + 1


class TestFaultDispatch:
    def test_fault_on_noncache_page_reraises(self, smart_pair):
        runtime = smart_pair.b
        base = runtime.space.map_region(1, Protection.NONE)
        fault = AccessViolation(
            "B", base, FaultKind.READ, runtime.space.page_number(base)
        )
        with pytest.raises(AccessViolation):
            runtime._handle_fault(fault)

    def test_unknown_page_state_rejected(self, callee_state):
        with pytest.raises(SmartRpcError):
            callee_state.cache.page_state(424242)
