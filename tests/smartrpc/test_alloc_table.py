"""Tests for the data allocation table (the paper's Table 1)."""

import pytest

from repro.smartrpc.alloc_table import AllocEntry, DataAllocationTable
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.long_pointer import PROVISIONAL_BASE, LongPointer


def entry(space="A", address=0x1000, local=0x5000, size=16, page=5,
          offset=0):
    return AllocEntry(
        pointer=LongPointer(space, address, "t"),
        local_address=local,
        size=size,
        page_number=page,
        offset=offset,
    )


class TestAddRemove:
    def test_add_and_lookup_by_pointer(self):
        table = DataAllocationTable()
        row = entry()
        table.add(row)
        assert table.entry_for(row.pointer) is row
        assert len(table) == 1

    def test_duplicate_pointer_rejected(self):
        table = DataAllocationTable()
        table.add(entry())
        with pytest.raises(SmartRpcError):
            table.add(entry(local=0x6000))

    def test_duplicate_local_address_rejected(self):
        table = DataAllocationTable()
        table.add(entry())
        with pytest.raises(SmartRpcError):
            table.add(entry(address=0x2000))

    def test_remove(self):
        table = DataAllocationTable()
        row = entry()
        table.add(row)
        table.remove(row)
        assert table.entry_for(row.pointer) is None
        assert table.entry_containing(row.local_address) is None
        assert len(table) == 0

    def test_remove_unknown_rejected(self):
        table = DataAllocationTable()
        with pytest.raises(SmartRpcError):
            table.remove(entry())

    def test_iteration(self):
        table = DataAllocationTable()
        rows = [entry(address=0x1000 + i, local=0x5000 + 16 * i, offset=16 * i)
                for i in range(3)]
        for row in rows:
            table.add(row)
        assert set(id(e) for e in table) == set(id(r) for r in rows)


class TestLocalAddressLookup:
    def test_containing_lookup_hits_interior(self):
        table = DataAllocationTable()
        row = entry(local=0x5000, size=16)
        table.add(row)
        assert table.entry_containing(0x5000) is row
        assert table.entry_containing(0x500F) is row
        assert table.entry_containing(0x5010) is None
        assert table.entry_containing(0x4FFF) is None

    def test_multiple_entries_bisected_correctly(self):
        table = DataAllocationTable()
        rows = [
            entry(address=0x1000 + i, local=0x5000 + 32 * i, size=16,
                  offset=32 * i)
            for i in range(10)
        ]
        for row in rows:
            table.add(row)
        for index, row in enumerate(rows):
            assert table.entry_containing(row.local_address + 8) is row
            gap = row.local_address + 20  # between entries
            assert table.entry_containing(gap) is None


class TestPageIndex:
    def test_entries_on_page(self):
        table = DataAllocationTable()
        on_five = entry(page=5)
        on_six = entry(address=0x2000, local=0x6000, page=6)
        table.add(on_five)
        table.add(on_six)
        assert table.entries_on_page(5) == [on_five]
        assert table.entries_on_page(6) == [on_six]
        assert table.entries_on_page(7) == []
        assert table.pages() == [5, 6]

    def test_remove_clears_page_index(self):
        table = DataAllocationTable()
        row = entry(page=5)
        table.add(row)
        table.remove(row)
        assert table.pages() == []


class TestRepoint:
    def test_repoint_swaps_long_pointer_in_place(self):
        table = DataAllocationTable()
        row = entry(address=PROVISIONAL_BASE + 1)
        table.add(row)
        real = row.pointer.with_address(0x3000)
        table.repoint(row, real)
        assert table.entry_for(real) is row
        assert row.pointer == real
        assert table.entry_containing(row.local_address) is row

    def test_repoint_to_existing_pointer_rejected(self):
        table = DataAllocationTable()
        first = entry(address=0x1000)
        second = entry(address=0x2000, local=0x6000)
        table.add(first)
        table.add(second)
        with pytest.raises(SmartRpcError):
            table.repoint(first, second.pointer)

    def test_repoint_foreign_entry_rejected(self):
        table = DataAllocationTable()
        with pytest.raises(SmartRpcError):
            table.repoint(entry(), LongPointer("A", 0x9000, "t"))


class TestPresentation:
    def test_rows_sorted_by_page_then_offset(self):
        table = DataAllocationTable()
        table.add(entry(address=0x1000, local=0x6010, page=6, offset=16))
        table.add(entry(address=0x2000, local=0x5000, page=5, offset=0))
        table.add(entry(address=0x3000, local=0x6000, page=6, offset=0))
        rows = table.rows()
        assert [(r[0], r[1]) for r in rows] == [(5, 0), (6, 0), (6, 16)]

    def test_format_table_mirrors_paper_table1(self):
        table = DataAllocationTable()
        table.add(entry(address=0x1000, local=0x5000, page=5, offset=0))
        table.add(entry(address=0x2000, local=0x5010, page=5, offset=16))
        text = table.format_table()
        assert "page #" in text
        assert "long pointer" in text
        assert text.count("LongPointer") == 2
