"""Tests for data larger than a page (multi-page cache spans)."""

import pytest

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    int64,
)

BIG_TYPE_ID = "big_record"
PAYLOAD = 3 * 4096 + 200  # spans four pages


def big_spec() -> StructType:
    return StructType(BIG_TYPE_ID, [
        Field("header", int64),
        Field("body", OpaqueType(PAYLOAD)),
        Field("next", PointerType(BIG_TYPE_ID)),
    ])


@pytest.fixture
def served(smart_pair):
    for runtime in (smart_pair.a, smart_pair.b):
        runtime.resolver.register(BIG_TYPE_ID, big_spec())
    interface = InterfaceDef("big", [
        ProcedureDef(
            "checksum",
            [Param("record", PointerType(BIG_TYPE_ID))],
            returns=int64,
        ),
    ])

    def checksum(ctx, record):
        spec = ctx.runtime.resolver.resolve(BIG_TYPE_ID)
        total = 0
        address = record
        while address != 0:
            view = ctx.struct_view(address, spec)
            header = view.get("header")
            body = view.get("body")
            assert isinstance(body, bytes)
            total += header + sum(body[::512])
            address = view.get("next")
        return total

    bind_server(smart_pair.b, interface, {"checksum": checksum})
    return smart_pair, ClientStub(smart_pair.a, interface, "B")


def build_chain(runtime, count):
    spec = runtime.resolver.resolve(BIG_TYPE_ID)
    layout = spec.layout(runtime.arch)
    size = spec.sizeof(runtime.arch)
    head = 0
    expected = 0
    for index in reversed(range(count)):
        address = runtime.heap.malloc(size, BIG_TYPE_ID)
        runtime.space.write_raw(
            address + layout.offsets["header"],
            (index * 1000).to_bytes(8, runtime.arch.byteorder,
                                    signed=True),
        )
        body = bytes((index + i) % 251 for i in range(PAYLOAD))
        runtime.space.write_raw(address + layout.offsets["body"], body)
        runtime.codec.write_pointer(
            address + layout.offsets["next"], head
        )
        head = address
        expected += index * 1000 + sum(body[::512])
    return head, expected


class TestSpanningTransfers:
    def test_single_big_record(self, served):
        pair, stub = served
        head, expected = build_chain(pair.a, 1)
        with pair.a.session() as session:
            assert stub.checksum(session, head) == expected

    def test_chain_of_big_records(self, served):
        pair, stub = served
        head, expected = build_chain(pair.a, 3)
        with pair.a.session() as session:
            assert stub.checksum(session, head) == expected

    def test_one_request_per_record_regardless_of_pages(self, served):
        pair, stub = served
        head, expected = build_chain(pair.a, 1)
        with pair.a.session() as session:
            stub.checksum(session, head)
        # One span fill fetches the whole record: one data request,
        # even though the record covers four pages.
        assert pair.network.stats.callbacks == 1

    def test_cached_after_first_access(self, served):
        pair, stub = served
        head, expected = build_chain(pair.a, 1)
        with pair.a.session() as session:
            stub.checksum(session, head)
            callbacks = pair.network.stats.callbacks
            stub.checksum(session, head)
            assert pair.network.stats.callbacks == callbacks

    def test_update_of_spanning_record_writes_back(self, served):
        pair, stub = served
        interface = InterfaceDef("bigw", [
            ProcedureDef(
                "stamp",
                [Param("record", PointerType(BIG_TYPE_ID))],
                returns=int64,
            ),
        ])

        def stamp(ctx, record):
            spec = ctx.runtime.resolver.resolve(BIG_TYPE_ID)
            view = ctx.struct_view(record, spec)
            view.set("header", 424242)
            # touch bytes on a *different* page of the span
            address = view.field_address("body") + 2 * 4096
            ctx.mem.store(address, b"MARK")
            return view.get("header")

        bind_server(pair.b, interface, {"stamp": stamp})
        stamp_stub = ClientStub(pair.a, interface, "B")
        head, _ = build_chain(pair.a, 1)
        with pair.a.session() as session:
            assert stamp_stub.stamp(session, head) == 424242
        spec = pair.a.resolver.resolve(BIG_TYPE_ID)
        layout = spec.layout(pair.a.arch)
        raw = pair.a.space.read_raw(head + layout.offsets["header"], 8)
        assert int.from_bytes(
            raw, pair.a.arch.byteorder, signed=True
        ) == 424242
        body = pair.a.space.read_raw(
            head + layout.offsets["body"] + 2 * 4096, 4
        )
        assert body == b"MARK"
