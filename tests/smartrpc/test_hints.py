"""Tests for programmer-supplied closure hints (paper §6)."""

import pytest

from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.hints import (
    ClosureHints,
    chain_only_hints,
    default_pointer_offsets,
)
from repro.workloads.hashtable import (
    HASH_NODE_TYPE_ID,
    HASH_OPS,
    HASH_TABLE_TYPE_ID,
    bind_hash_server,
    build_hash_table,
    hash_client,
    hash_node_spec,
    value_for,
)
from repro.workloads.traversal import bind_tree_server, tree_client
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    tree_node_spec,
)
from repro.xdr.arch import SPARC32


class TestHintResolution:
    def test_unhinted_type_returns_none(self):
        hints = ClosureHints()
        assert hints.pointer_offsets(
            TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
        ) is None

    def test_leaf_hint_returns_empty(self):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, [])
        assert hints.pointer_offsets(
            TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
        ) == []

    def test_field_subset_resolves_offsets(self):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, ["right"])
        offsets = hints.pointer_offsets(
            TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
        )
        assert offsets == [4]  # right pointer on SPARC32

    def test_hint_order_respected(self):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, ["right", "left"])
        offsets = hints.pointer_offsets(
            TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
        )
        assert offsets == [4, 0]

    def test_unknown_field_rejected(self):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, ["middle"])
        with pytest.raises(Exception):
            hints.pointer_offsets(
                TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
            )

    def test_pointerless_field_rejected(self):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, ["data"])
        with pytest.raises(SmartRpcError):
            hints.pointer_offsets(
                TREE_NODE_TYPE_ID, tree_node_spec(), SPARC32
            )

    def test_default_offsets_cover_all_pointers(self):
        assert default_pointer_offsets(tree_node_spec(), SPARC32) == [0, 4]

    def test_chain_only_convenience(self):
        hints = chain_only_hints(HASH_NODE_TYPE_ID)
        offsets = hints.pointer_offsets(
            HASH_NODE_TYPE_ID, hash_node_spec(), SPARC32
        )
        assert offsets == [0]


class TestHintedTransfers:
    def _hash_world(self, network, hints):
        from tests.conftest import SmartPair

        # Hints steer the closure; page-grain sibling fills can mask
        # them, so the sparse-access demonstration pairs them with
        # isolated placeholder allocation.
        pair = SmartPair(
            network,
            closure_hints=hints,
            allocation_strategy="isolated",
        )
        table, _ = build_hash_table(pair.a, list(range(600)))
        bind_hash_server(pair.b)
        pair.a.import_interface(HASH_OPS)
        return pair, table

    def test_hash_hints_cut_prefetch_waste(self, network):
        hints = ClosureHints()
        hints.follow(HASH_TABLE_TYPE_ID, [])
        hints.follow(HASH_NODE_TYPE_ID, ["next"])
        pair, table = self._hash_world(network, hints)
        stub = hash_client(pair.a, "B")
        with pair.a.session() as session:
            found = stub.lookup(session, table, 42)
        assert found == int.from_bytes(value_for(42)[8:], "big")
        hinted_bytes = network.stats.total_bytes
        hinted_entries = network.stats.entries_transferred

        from repro.simnet.network import Network

        plain_network = Network()
        plain_pair, plain_table = self._hash_world(plain_network, None)
        plain_stub = hash_client(plain_pair.a, "B")
        with plain_pair.a.session() as session:
            plain_stub.lookup(session, plain_table, 42)
        assert hinted_bytes < plain_network.stats.total_bytes / 2
        assert hinted_entries < plain_network.stats.entries_transferred

    def test_tree_search_still_correct_under_misleading_hints(
        self, network
    ):
        """Hints change prefetching, never correctness: a wrong hint
        just causes extra faults."""
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, ["right"])  # search goes left!
        from tests.conftest import SmartPair

        pair = SmartPair(network, closure_hints=hints)
        root = build_complete_tree(pair.a, 31)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            assert stub.search(session, root, 31) == sum(range(31))

    def test_leaf_hint_degrades_to_lazy(self, network):
        hints = ClosureHints()
        hints.follow(TREE_NODE_TYPE_ID, [])
        from tests.conftest import SmartPair

        pair = SmartPair(network, closure_hints=hints)
        root = build_complete_tree(pair.a, 15)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            stub.search(session, root, 15)
        # No prefetch beyond page fills: many more callbacks than the
        # single request an 8K closure would need for 15 nodes.
        assert network.stats.callbacks >= 7
