"""Tests for the coherency protocol: piggybacks, write-back, invalidate."""

import pytest

from repro.rpc.stubgen import ClientStub, bind_server
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.smartrpc.long_pointer import LongPointer
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree
from repro.workloads.traversal import bind_tree_server, tree_client
from repro.xdr.types import PointerType, int32


def data_of(runtime, address):
    spec = runtime.resolver.resolve(TREE_NODE_TYPE_ID)
    layout = spec.layout(runtime.arch)
    raw = runtime.space.read_raw(address + layout.offsets["data"], 8)
    return int.from_bytes(raw, "big")


class TestWriteBackToHome:
    def test_callee_updates_reach_home_after_call(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            stub.search_update(session, root, 7)
            # Dirty data rode home on the reply piggyback already.
            assert data_of(smart_pair.a, root) == 1
        assert data_of(smart_pair.a, root) == 1

    def test_unvisited_nodes_untouched(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            stub.search_update(session, root, 3)  # only 3 nodes
        spec = smart_pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        layout = spec.layout(smart_pair.a.arch)
        updated = 0
        stack = [root]
        while stack:
            address = stack.pop()
            if address == 0:
                continue
            index_plus = data_of(smart_pair.a, address)
            left = smart_pair.a.codec.read_pointer(
                address + layout.offsets["left"]
            )
            right = smart_pair.a.codec.read_pointer(
                address + layout.offsets["right"]
            )
            stack += [left, right]
            if index_plus > 100:  # impossible original index for 7 nodes
                updated += 1
        assert updated == 0  # originals hold index or index+1 only

    def test_repeated_updates_accumulate(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 3)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            stub.search_update(session, root, 3)
            stub.search_update(session, root, 3)
        assert data_of(smart_pair.a, root) == 2


class TestDirtyDataTravelsWithActivity:
    def test_third_space_sees_modifications(self, smart_pair):
        """The paper's §3.4 scenario: C must see what B modified."""
        runtime_c = smart_pair.add_runtime("C")
        root = build_complete_tree(smart_pair.a, 3)
        bind_tree_server(runtime_c)

        relay = InterfaceDef("relay", [
            ProcedureDef(
                "modify_then_forward",
                [Param("root", PointerType(TREE_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def modify_then_forward(ctx, root_pointer):
            spec = ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)
            view = ctx.struct_view(root_pointer, spec)
            view.set("data", (777).to_bytes(8, "big"))
            # forward to C: the dirty root must ride along
            return ctx.call("C", "tree_ops.search", (root_pointer, 1))

        bind_server(smart_pair.b, relay, {
            "modify_then_forward": modify_then_forward,
        })
        smart_pair.b.import_interface(
            __import__(
                "repro.workloads.traversal", fromlist=["TREE_OPS"]
            ).TREE_OPS
        )
        stub = ClientStub(smart_pair.a, relay, "B")
        with smart_pair.a.session() as session:
            checksum = stub.modify_then_forward(session, root)
        assert checksum == 777  # C read B's value, not A's original

    def test_home_original_updated_when_activity_returns(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 3)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            stub.search_update(session, root, 1)
            # A is home: its original already reflects the update.
            assert data_of(smart_pair.a, root) == 1


class TestSessionEnd:
    def test_invalidation_reaches_participants(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        session = smart_pair.a.session()
        with session:
            stub.search(session, root, 7)
            state_b = smart_pair.b.session_state(session.session_id)
            assert len(state_b.cache.table) > 0
        from repro.rpc.errors import SessionError

        with pytest.raises(SessionError):
            smart_pair.b.session_state(session.session_id)

    def test_cache_pages_unmapped_after_session(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        session = smart_pair.a.session()
        with session:
            stub.search(session, root, 7)
            state_b = smart_pair.b.session_state(session.session_id)
            pages = list(state_b.cache._pages)
        for page in pages:
            assert not smart_pair.b.space.is_mapped(page * 4096)

    def test_sessions_are_independent(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as first:
            checksum_one = stub.search(first, root, 7)
        with smart_pair.a.session() as second:
            checksum_two = stub.search(second, root, 7)
        assert checksum_one == checksum_two

    def test_second_session_refetches_data(self, smart_pair):
        """Invalidation is real: a new session cannot reuse old cache."""
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as first:
            stub.search(first, root, 7)
        smart_pair.network.stats.reset()
        with smart_pair.a.session() as second:
            stub.search(second, root, 7)
        assert smart_pair.network.stats.callbacks > 0

    def test_write_back_message_used_when_ground_holds_dirty(
        self, smart_pair
    ):
        """If the GROUND space caches and modifies remote data, session
        end must push it back with a prepare/commit exchange pair."""
        runtime_c = smart_pair.add_runtime("C")
        root = build_complete_tree(runtime_c, 3)

        # Ground A calls C's server? Instead: A (ground) modifies C's
        # data directly by calling a procedure ON ITSELF is impossible;
        # so A calls B, B returns, then A touches nothing. Simpler: A
        # fetches C-homed data via a call to C that returns a pointer,
        # then A dereferences and modifies it locally in-session.
        from repro.rpc.interface import InterfaceDef, ProcedureDef
        from repro.xdr.types import PointerType

        expose = InterfaceDef("expose", [
            ProcedureDef(
                "tree_root", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ])

        def tree_root(ctx):
            return root

        bind_server(runtime_c, expose, {"tree_root": tree_root})
        stub = ClientStub(smart_pair.a, expose, "C")
        spec = smart_pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        from repro.simnet.message import MessageKind

        with smart_pair.a.session() as session:
            pointer = stub.tree_root(session)
            from repro.xdr.view import StructView

            view = StructView(
                smart_pair.a.mem, pointer, spec, smart_pair.a.arch
            )
            view.set("data", (555).to_bytes(8, "big"))
        # Session closed: the dirty page was staged and committed at C.
        counts = smart_pair.network.stats.messages_by_kind
        assert counts[MessageKind.WRITEBACK_PREPARE] == 1
        assert counts[MessageKind.WRITEBACK_COMMIT] == 1
        assert data_of(runtime_c, root) == 555
