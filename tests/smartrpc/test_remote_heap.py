"""Tests for extended_malloc / extended_free and operation batching."""

import pytest

from repro.rpc.errors import SessionError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.simnet.message import MessageKind
from repro.smartrpc import remote_heap
from repro.smartrpc.errors import SwizzleError
from repro.workloads.linked_list import (
    LIST_NODE_TYPE_ID,
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
)


class _GroundSession:
    """Adapter giving `.state` for direct unit calls."""

    def __init__(self, state):
        self.state = state


@pytest.fixture
def ground(smart_pair):
    state = smart_pair.b.ensure_smart_session("sess", "B")
    return smart_pair, state


class TestExtendedMalloc:
    def test_local_malloc_is_plain_heap(self, ground):
        pair, state = ground
        address = pair.b.extended_malloc(
            _GroundSession(state), "B", LIST_NODE_TYPE_ID
        )
        assert pair.b.heap.owns(address)

    def test_remote_malloc_returns_usable_local_pointer(self, ground):
        pair, state = ground
        address = pair.b.extended_malloc(
            _GroundSession(state), "A", LIST_NODE_TYPE_ID
        )
        # Immediately writable (fresh page is read-write + dirty).
        pair.b.mem.store(address, b"\x01\x02")
        entry = state.cache.table.entry_containing(address)
        assert entry is not None and entry.pointer.is_provisional
        assert entry.resident

    def test_flush_assigns_real_home_address(self, ground):
        pair, state = ground
        address = pair.b.extended_malloc(
            _GroundSession(state), "A", LIST_NODE_TYPE_ID
        )
        remote_heap.flush(pair.b, state)
        entry = state.cache.table.entry_containing(address)
        assert not entry.pointer.is_provisional
        assert pair.a.heap.owns(entry.pointer.address)

    def test_flush_batches_into_one_message(self, ground):
        pair, state = ground
        session = _GroundSession(state)
        for _ in range(10):
            pair.b.extended_malloc(session, "A", LIST_NODE_TYPE_ID)
        before = pair.network.stats.messages_by_kind[
            MessageKind.MEMORY_BATCH
        ]
        remote_heap.flush(pair.b, state)
        after = pair.network.stats.messages_by_kind[
            MessageKind.MEMORY_BATCH
        ]
        assert after == before + 1

    def test_flush_with_nothing_pending_sends_nothing(self, ground):
        pair, state = ground
        before = pair.network.stats.total_messages
        remote_heap.flush(pair.b, state)
        assert pair.network.stats.total_messages == before

    def test_stats_count_remote_mallocs(self, ground):
        pair, state = ground
        pair.b.extended_malloc(_GroundSession(state), "A",
                               LIST_NODE_TYPE_ID)
        assert pair.network.stats.remote_mallocs == 1

    def test_needs_smart_session(self, smart_pair):
        from repro.rpc.session import SessionState

        class Fake:
            state = SessionState("x", "B")

        with pytest.raises(SessionError):
            smart_pair.b.extended_malloc(Fake(), "A", LIST_NODE_TYPE_ID)


class TestExtendedFree:
    def test_free_local_allocation(self, ground):
        pair, state = ground
        session = _GroundSession(state)
        address = pair.b.extended_malloc(session, "B", LIST_NODE_TYPE_ID)
        pair.b.extended_free(session, address)
        assert not pair.b.heap.owns(address)

    def test_free_provisional_cancels_pending_alloc(self, ground):
        pair, state = ground
        session = _GroundSession(state)
        address = pair.b.extended_malloc(session, "A", LIST_NODE_TYPE_ID)
        pair.b.extended_free(session, address)
        assert state.pending_allocs == []
        assert state.pending_frees == []
        before = pair.network.stats.total_messages
        remote_heap.flush(pair.b, state)
        assert pair.network.stats.total_messages == before

    def test_free_remote_data_releases_original(self, ground):
        pair, state = ground
        session = _GroundSession(state)
        address = pair.b.extended_malloc(session, "A", LIST_NODE_TYPE_ID)
        remote_heap.flush(pair.b, state)
        entry = state.cache.table.entry_containing(address)
        home_address = entry.pointer.address
        pair.b.extended_free(session, address)
        remote_heap.flush(pair.b, state)
        assert not pair.a.heap.owns(home_address)

    def test_free_wild_pointer_rejected(self, ground):
        pair, state = ground
        with pytest.raises(SwizzleError):
            pair.b.extended_free(_GroundSession(state), 0xDDDD0000)

    def test_free_interior_pointer_rejected(self, ground):
        pair, state = ground
        session = _GroundSession(state)
        address = pair.b.extended_malloc(session, "A", LIST_NODE_TYPE_ID)
        with pytest.raises(SwizzleError):
            pair.b.extended_free(session, address + 2)


class TestEndToEndListExtension:
    def test_append_range_survives_session(self, smart_pair):
        bind_list_server(smart_pair.b)
        smart_pair.a.import_interface(LIST_OPS)
        head = build_list(smart_pair.a, [1, 2])
        client = list_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            client.append_range(session, head, 50, 4)
        assert read_list(smart_pair.a, head) == [1, 2, 50, 51, 52, 53]

    def test_drop_negatives_frees_home_memory(self, smart_pair):
        bind_list_server(smart_pair.b)
        smart_pair.a.import_interface(LIST_OPS)
        head = build_list(smart_pair.a, [-1, 5, -2, 7])
        live_before = smart_pair.a.heap.live_bytes
        client = list_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            new_head = client.drop_negatives(session, head)
        assert read_list(smart_pair.a, new_head) == [5, 7]
        assert smart_pair.a.heap.live_bytes < live_before

    def test_immediate_mode_sends_per_operation(self, network):
        from tests.conftest import SmartPair

        pair = SmartPair(network, batch_memory_ops=False)
        bind_list_server(pair.b)
        pair.a.import_interface(LIST_OPS)
        head = build_list(pair.a, [1])
        client = list_client(pair.a, "B")
        with pair.a.session() as session:
            client.append_range(session, head, 10, 5)
        batches = network.stats.messages_by_kind[MessageKind.MEMORY_BATCH]
        assert batches >= 5  # one per allocation, none coalesced
