"""Error-path tests for session misuse and pointer lifetime."""

import pytest

from repro.memory.faults import SegmentationError
from repro.rpc.errors import RpcRemoteError, SessionError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.smartrpc.errors import SwizzleError
from repro.workloads.traversal import bind_tree_server, tree_client
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree
from repro.xdr.types import PointerType, int32


class TestPointerLifetime:
    def test_stale_pointer_argument_after_session_rejected(
        self, smart_pair
    ):
        """A remote pointer from a dead session cannot be re-sent."""
        interface = InterfaceDef("give", [
            ProcedureDef(
                "a_node", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
            ProcedureDef(
                "read_node",
                [Param("node", PointerType(TREE_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def a_node(ctx):
            return ctx.runtime.malloc(TREE_NODE_TYPE_ID)

        def read_node(ctx, node):
            return 1

        bind_server(smart_pair.b, interface, {
            "a_node": a_node, "read_node": read_node,
        })
        stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            stale = stub.a_node(session)
        with smart_pair.a.session() as fresh:
            # The cache page holding `stale` was invalidated: the
            # address resolves to nothing and unswizzling fails.
            with pytest.raises(SwizzleError):
                stub.read_node(fresh, stale)

    def test_callee_cannot_use_pointer_after_invalidation(
        self, smart_pair
    ):
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        captured = {}

        interface = InterfaceDef("capture", [
            ProcedureDef(
                "stash",
                [Param("root", PointerType(TREE_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def stash(ctx, root_pointer):
            captured["pointer"] = root_pointer
            captured["runtime"] = ctx.runtime
            return 0

        bind_server(smart_pair.b, interface, {"stash": stash})
        capture_stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            capture_stub.stash(session, root)
        # B kept the swizzled address beyond the session: the paper
        # says it has no meaning now, and dereferencing faults.
        with pytest.raises(SegmentationError):
            captured["runtime"].mem.load(captured["pointer"], 1)


class TestSessionMisuse:
    def test_extended_malloc_outside_smart_session(self, smart_pair):
        class FakeSession:
            from repro.rpc.session import SessionState

            state = SessionState("x", "A")

        with pytest.raises(SessionError):
            smart_pair.a.extended_malloc(
                FakeSession(), "B", TREE_NODE_TYPE_ID
            )

    def test_double_extended_free_rejected_remotely(self, smart_pair):
        from repro.workloads.linked_list import (
            LIST_NODE_TYPE_ID,
            build_list,
        )

        interface = InterfaceDef("freeing", [
            ProcedureDef(
                "double_free",
                [Param("node", PointerType(LIST_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def double_free(ctx, node):
            ctx.runtime.extended_free(ctx, node)
            ctx.runtime.extended_free(ctx, node)  # must raise
            return 0

        bind_server(smart_pair.b, interface, {"double_free": double_free})
        head = build_list(smart_pair.a, [1])
        stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            with pytest.raises(RpcRemoteError):
                stub.double_free(session, head)

    def test_reentrant_ground_session_ids_disjoint(self, smart_pair):
        first = smart_pair.a.session()
        second = smart_pair.a.session()
        with first, second:
            assert first.session_id != second.session_id

    def test_ending_twice_is_harmless(self, smart_pair):
        session = smart_pair.a.session()
        with session:
            pass
        # __exit__ already ran; a second explicit exit is a no-op
        session.__exit__(None, None, None)
