"""Integration tests for the smart runtime's headline behaviours."""

import pytest

from repro.memory.faults import SegmentationError
from repro.rpc.errors import SessionError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.smartrpc.errors import SmartRpcError
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import (
    TREE_OPS,
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import TREE_NODE_TYPE_ID, build_complete_tree
from repro.xdr.types import PointerType, int32


class TestTransparentDereference:
    def test_remote_search_sees_correct_data(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 31)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            checksum = stub.search(session, root, 31)
        assert checksum == expected_search_checksum(31, 31)

    def test_partial_search_matches_prefix(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 31)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            checksum = stub.search(session, root, 10)
        assert checksum == expected_search_checksum(10, 31)

    def test_caching_no_second_transfer(self, smart_pair):
        """The paper's claim: subsequent accesses are local."""
        root = build_complete_tree(smart_pair.a, 31)
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            stub.search(session, root, 31)
            smart_pair.network.stats.reset()
            stub.search(session, root, 31)
            assert smart_pair.network.stats.callbacks == 0

    def test_null_pointer_argument(self, smart_pair):
        bind_tree_server(smart_pair.b)
        stub = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session:
            assert stub.search(session, 0, 100) == 0

    def test_pointer_result_is_dereferencable(self, smart_pair):
        """Paper §3.1: B may return a pointer into its own space."""
        interface = InterfaceDef("give", [
            ProcedureDef(
                "make_node", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ])
        made = {}

        def make_node(ctx):
            address = ctx.runtime.malloc(TREE_NODE_TYPE_ID)
            spec = ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)
            view = ctx.struct_view(address, spec)
            view.set("left", 0)
            view.set("right", 0)
            view.set("data", (4321).to_bytes(8, "big"))
            made["address"] = address
            return address

        bind_server(smart_pair.b, interface, {"make_node": make_node})
        stub = ClientStub(smart_pair.a, interface, "B")
        spec = smart_pair.a.resolver.resolve(TREE_NODE_TYPE_ID)
        with smart_pair.a.session() as session:
            pointer = stub.make_node(session)
            from repro.xdr.view import StructView

            view = StructView(
                smart_pair.a.mem, pointer, spec, smart_pair.a.arch
            )
            assert view.get("data") == (4321).to_bytes(8, "big")

    def test_remote_pointer_dies_with_session(self, smart_pair):
        interface = InterfaceDef("give", [
            ProcedureDef(
                "a_node", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ])

        def a_node(ctx):
            return ctx.runtime.malloc(TREE_NODE_TYPE_ID)

        bind_server(smart_pair.b, interface, {"a_node": a_node})
        stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            pointer = stub.a_node(session)
        # After the session the cache page is unmapped: dereferencing
        # the stale ordinary pointer is a segmentation fault.
        with pytest.raises(SegmentationError):
            smart_pair.a.mem.load(pointer, 1)


class TestFigureOneModel:
    def test_nested_rpc_with_callback(self, smart_pair):
        """A -> B -> C -> callback to A, one active thread throughout."""
        runtime_c = smart_pair.add_runtime("C")
        order = []

        hop = InterfaceDef("hop", [
            ProcedureDef("b_step", [Param("x", int32)], returns=int32),
            ProcedureDef("c_step", [Param("x", int32)], returns=int32),
            ProcedureDef("a_step", [Param("x", int32)], returns=int32),
        ])

        def b_step(ctx, x):
            order.append("B")
            return ctx.call("C", "hop.c_step", (x + 1,))

        def c_step(ctx, x):
            order.append("C")
            return ctx.call("A", "hop.a_step", (x + 1,))

        def a_step(ctx, x):
            order.append("A")
            return x + 1

        bind_server(smart_pair.b, hop, {
            "b_step": b_step,
            "c_step": c_step,
            "a_step": a_step,
        })
        bind_server(runtime_c, hop, {
            "b_step": b_step,
            "c_step": c_step,
            "a_step": a_step,
        })
        bind_server(smart_pair.a, hop, {
            "b_step": b_step,
            "c_step": c_step,
            "a_step": a_step,
        })
        stub = ClientStub(smart_pair.a, hop, "B")
        with smart_pair.a.session() as session:
            assert stub.b_step(session, 0) == 3
        assert order == ["B", "C", "A"]

    def test_participants_known_to_ground_after_nesting(self, smart_pair):
        runtime_c = smart_pair.add_runtime("C")
        root = build_complete_tree(smart_pair.a, 3)
        bind_tree_server(runtime_c)
        forward = InterfaceDef("forward", [
            ProcedureDef(
                "via",
                [Param("root", PointerType(TREE_NODE_TYPE_ID))],
                returns=int32,
            ),
        ])

        def via(ctx, root_pointer):
            return ctx.call("C", "tree_ops.search", (root_pointer, 3))

        bind_server(smart_pair.b, forward, {"via": via})
        smart_pair.b.import_interface(TREE_OPS)
        stub = ClientStub(smart_pair.a, forward, "B")
        session = smart_pair.a.session()
        with session:
            stub.via(session, root)
            state = session.state
            assert {"A", "B", "C"} <= state.participants
        # the invalidation reached C even though A never called it
        with pytest.raises(SessionError):
            runtime_c.session_state(session.session_id)


class TestConfiguration:
    def test_negative_closure_size_rejected(self, network):
        site = network.add_site("X")
        from repro.xdr.arch import SPARC32

        with pytest.raises(SmartRpcError):
            SmartRpcRuntime(network, site, SPARC32, closure_size=-1)

    def test_closure_size_zero_still_correct(self, network):
        from tests.conftest import SmartPair

        pair = SmartPair(network, closure_size=0)
        root = build_complete_tree(pair.a, 15)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            assert stub.search(session, root, 15) == (
                expected_search_checksum(15, 15)
            )

    def test_large_closure_single_request(self, network):
        from tests.conftest import SmartPair

        pair = SmartPair(network, closure_size=10**6)
        root = build_complete_tree(pair.a, 63)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            stub.search(session, root, 63)
        assert network.stats.callbacks == 1

    @pytest.mark.parametrize("strategy", ["single_home", "mixed",
                                          "isolated", "packed"])
    def test_all_strategies_produce_correct_results(self, network,
                                                    strategy):
        from tests.conftest import SmartPair

        pair = SmartPair(network, allocation_strategy=strategy)
        root = build_complete_tree(pair.a, 31)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            assert stub.search(session, root, 31) == (
                expected_search_checksum(31, 31)
            )

    @pytest.mark.parametrize("order", ["bfs", "dfs"])
    def test_both_closure_orders_correct(self, network, order):
        from tests.conftest import SmartPair

        pair = SmartPair(network, closure_order=order)
        root = build_complete_tree(pair.a, 31)
        bind_tree_server(pair.b)
        stub = tree_client(pair.a, "B")
        with pair.a.session() as session:
            assert stub.search(session, root, 31) == (
                expected_search_checksum(31, 31)
            )
