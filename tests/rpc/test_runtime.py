"""Tests for the conventional RPC runtime."""

import pytest

from repro.rpc.errors import (
    PointerNotSupportedError,
    RpcError,
    RpcRemoteError,
    SessionError,
    UnknownProcedureError,
)
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import RpcRuntime
from repro.rpc.stubgen import ClientStub, bind_server
from repro.simnet.network import Network
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.types import PointerType, float64, int32

MATH = InterfaceDef("math", [
    ProcedureDef("add", [Param("x", int32), Param("y", int32)],
                 returns=int32),
    ProcedureDef("halve", [Param("x", float64)], returns=float64),
    ProcedureDef("boom", [], returns=int32),
    ProcedureDef("ping", [], returns=None),
])


@pytest.fixture
def pair():
    network = Network()
    a = RpcRuntime(network, network.add_site("A"), SPARC32)
    b = RpcRuntime(network, network.add_site("B"), X86_64)

    def boom(ctx):
        raise ValueError("intentional failure")

    bind_server(b, MATH, {
        "add": lambda ctx, x, y: x + y,
        "halve": lambda ctx, x: x / 2,
        "boom": boom,
        "ping": lambda ctx: None,
    })
    a.import_interface(MATH)
    return network, a, b


class TestBasicCalls:
    def test_call_returns_result(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            assert stub.add(session, 2, 3) == 5
            assert stub.halve(session, 5.0) == 2.5

    def test_void_call(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            assert stub.ping(session) is None

    def test_call_charges_time_and_messages(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            stub.add(session, 1, 1)
        assert network.stats.total_messages == 2
        assert network.clock.now > 0

    def test_call_by_qualified_name(self, pair):
        network, a, b = pair
        with a.session() as session:
            assert a.call(session, "B", "math.add", (4, 6)) == 10

    def test_unknown_procedure_caller_side(self, pair):
        network, a, b = pair
        with a.session() as session:
            with pytest.raises(UnknownProcedureError):
                a.call(session, "B", "math.mul", (1, 2))


class TestRemoteErrors:
    def test_exception_ships_as_remote_error(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            with pytest.raises(RpcRemoteError) as info:
                stub.boom(session)
        assert info.value.remote_type == "ValueError"
        assert "intentional failure" in info.value.remote_message

    def test_session_usable_after_remote_error(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            with pytest.raises(RpcRemoteError):
                stub.boom(session)
            assert stub.add(session, 1, 2) == 3


class TestSessions:
    def test_call_outside_session_rejected(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        session = a.session()
        with session:
            pass
        with pytest.raises(SessionError):
            stub.add(session, 1, 2)

    def test_session_ids_unique(self, pair):
        network, a, b = pair
        first = a.session()
        second = a.session()
        assert first.session_id != second.session_id

    def test_callee_tracks_participants(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            stub.add(session, 1, 2)
            state = b.session_state(session.session_id)
            assert "A" in state.participants

    def test_callee_state_dropped_via_drop_session(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            stub.add(session, 1, 2)
            b.drop_session(session.session_id)
            with pytest.raises(SessionError):
                b.session_state(session.session_id)

    def test_end_foreign_session_rejected(self, pair):
        network, a, b = pair
        stub = ClientStub(a, MATH, "B")
        with a.session() as session:
            stub.add(session, 1, 2)
            state = b.session_state(session.session_id)
            with pytest.raises(SessionError):
                b.end_session(state)


class TestNestedAndCallback:
    def test_nested_call_through_context(self, pair):
        network, a, b = pair
        relay = InterfaceDef("relay", [
            ProcedureDef("via_b", [Param("x", int32)], returns=int32),
        ])

        def via_b(ctx, x):
            return ctx.call("C", "math.add", (x, 100))

        bind_server(b, relay, {"via_b": via_b})
        c = RpcRuntime(network, network.add_site("C"), SPARC32)
        bind_server(c, MATH, {
            "add": lambda ctx, x, y: x + y,
            "halve": lambda ctx, x: x / 2,
            "boom": lambda ctx: 0,
            "ping": lambda ctx: None,
        })
        stub = ClientStub(a, relay, "B")
        with a.session() as session:
            assert stub.via_b(session, 5) == 105
        assert network.stats.total_messages == 4

    def test_callback_to_caller(self, pair):
        network, a, b = pair
        relay = InterfaceDef("relay", [
            ProcedureDef("bounce", [Param("x", int32)], returns=int32),
        ])
        local = InterfaceDef("local", [
            ProcedureDef("triple", [Param("x", int32)], returns=int32),
        ])

        def bounce(ctx, x):
            return ctx.callback("local.triple", (x,))

        bind_server(b, relay, {"bounce": bounce})
        b.import_interface(local)  # callee-side stub knowledge
        bind_server(a, local, {"triple": lambda ctx, x: x * 3})
        stub = ClientStub(a, relay, "B")
        with a.session() as session:
            assert stub.bounce(session, 7) == 21

    def test_call_depth_tracked(self, pair):
        network, a, b = pair
        probe = InterfaceDef("probe", [
            ProcedureDef("depth", [], returns=int32),
        ])

        def depth(ctx):
            return ctx.state.call_depth

        bind_server(b, probe, {"depth": depth})
        stub = ClientStub(a, probe, "B")
        with a.session() as session:
            assert stub.depth(session) == 1


class TestRegistration:
    def test_duplicate_registration_rejected(self, pair):
        network, a, b = pair
        with pytest.raises(RpcError):
            b.register_procedure(MATH, "add", lambda ctx, x, y: 0)

    def test_unknown_procedure_callee_side(self, pair):
        network, a, b = pair
        ghost = InterfaceDef("ghost", [
            ProcedureDef("gone", [], returns=int32),
        ])
        a.import_interface(ghost)
        with a.session() as session:
            with pytest.raises(RpcRemoteError):
                a.call(session, "B", "ghost.gone", ())

    def test_pointer_argument_refused_by_conventional_rpc(self, pair):
        """The restriction the paper removes (its Section 1)."""
        network, a, b = pair
        trees = InterfaceDef("trees", [
            ProcedureDef("walk", [Param("root", PointerType("node"))],
                         returns=int32),
        ])
        a.import_interface(trees)
        with a.session() as session:
            with pytest.raises(PointerNotSupportedError):
                a.call(session, "B", "trees.walk", (0x1000,))

    def test_typed_heap_malloc(self, pair):
        network, a, b = pair
        a.resolver.register("i", int32)
        address = a.malloc("i")
        assert a.heap.allocation_at(address).type_id == "i"
