"""Tests for remote function references (the §6 extension)."""

import pytest

from repro.rpc.errors import MarshalError, RpcError
from repro.rpc.funcref import FuncRef, FuncRefType, invoke
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.workloads.linked_list import (
    LIST_NODE_TYPE_ID,
    build_list,
    read_list,
)
from repro.xdr.arch import SPARC32
from repro.xdr.errors import XdrError
from repro.xdr.types import PointerType, int32

MAPPER = ProcedureDef("mapper", [Param("x", int32)], returns=int32)

LOCAL_FUNCS = InterfaceDef("local_funcs", [
    ProcedureDef("double", [Param("x", int32)], returns=int32),
    ProcedureDef("negate", [Param("x", int32)], returns=int32),
])

APPLY = InterfaceDef("apply", [
    ProcedureDef(
        "map_list",
        [
            Param("head", PointerType(LIST_NODE_TYPE_ID)),
            Param("f", FuncRefType(MAPPER)),
        ],
        returns=int32,
    ),
    ProcedureDef(
        "apply_twice",
        [Param("x", int32), Param("f", FuncRefType(MAPPER))],
        returns=int32,
    ),
])


def map_list(ctx, head, f):
    spec = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    count = 0
    address = head
    while address != 0:
        view = ctx.struct_view(address, spec)
        view.set("value", invoke(ctx, f, (view.get("value"),)))
        count += 1
        address = view.get("next")
    return count


def apply_twice(ctx, x, f):
    return invoke(ctx, f, (invoke(ctx, f, (x,)),))


@pytest.fixture
def served(smart_pair):
    bind_server(smart_pair.a, LOCAL_FUNCS, {
        "double": lambda ctx, x: 2 * x,
        "negate": lambda ctx, x: -x,
    })
    bind_server(smart_pair.b, APPLY, {
        "map_list": map_list,
        "apply_twice": apply_twice,
    })
    return smart_pair, ClientStub(smart_pair.a, APPLY, "B")


class TestFuncRefValues:
    def test_func_ref_requires_local_implementation(self, smart_pair):
        with pytest.raises(RpcError):
            smart_pair.b.func_ref(LOCAL_FUNCS, "double")

    def test_func_ref_carries_signature(self, served):
        pair, stub = served
        ref = pair.a.func_ref(LOCAL_FUNCS, "double")
        assert ref.space_id == "A"
        assert ref.qualified == "local_funcs.double"
        assert ref.signature.name == "double"

    def test_func_ref_type_has_no_layout(self):
        spec = FuncRefType(MAPPER)
        with pytest.raises(XdrError):
            spec.sizeof(SPARC32)
        with pytest.raises(XdrError):
            spec.alignment(SPARC32)

    def test_equality_by_signature_name(self):
        assert FuncRefType(MAPPER) == FuncRefType(
            ProcedureDef("mapper", [Param("y", int32)], returns=int32)
        )


class TestHigherOrderCalls:
    def test_callee_invokes_caller_function(self, served):
        """The classic callback motivation, now first-class."""
        pair, stub = served
        with pair.a.session() as session:
            assert stub.apply_twice(
                session, 5, pair.a.func_ref(LOCAL_FUNCS, "double")
            ) == 20

    def test_function_choice_is_dynamic(self, served):
        pair, stub = served
        with pair.a.session() as session:
            doubled = stub.apply_twice(
                session, 3, pair.a.func_ref(LOCAL_FUNCS, "double")
            )
            negated = stub.apply_twice(
                session, 3, pair.a.func_ref(LOCAL_FUNCS, "negate")
            )
        assert (doubled, negated) == (12, 3)

    def test_map_over_remote_list_with_remote_function(self, served):
        """Pointers AND function references in one call: the two
        methods compose, as the paper's conclusion predicts."""
        pair, stub = served
        head = build_list(pair.a, [1, 2, 3])
        with pair.a.session() as session:
            count = stub.map_list(
                session, head, pair.a.func_ref(LOCAL_FUNCS, "double")
            )
        assert count == 3
        assert read_list(pair.a, head) == [2, 4, 6]

    def test_invoking_local_reference_skips_network(self, served):
        pair, stub = served
        bind_server(pair.b, LOCAL_FUNCS, {
            "double": lambda ctx, x: 2 * x,
            "negate": lambda ctx, x: -x,
        })

        probe = InterfaceDef("probe", [
            ProcedureDef(
                "self_apply",
                [Param("x", int32), Param("f", FuncRefType(MAPPER))],
                returns=int32,
            ),
        ])

        def self_apply(ctx, x, f):
            before = ctx.runtime.stats.total_messages
            result = invoke(ctx, f, (x,))
            assert ctx.runtime.stats.total_messages == before
            return result

        bind_server(pair.b, probe, {"self_apply": self_apply})
        stub2 = ClientStub(pair.a, probe, "B")
        with pair.a.session() as session:
            # B passes ITS OWN function: invoking it on B is local.
            b_ref = pair.b.func_ref(LOCAL_FUNCS, "negate")
            assert stub2.self_apply(session, 9, b_ref) == -9

    def test_non_funcref_value_rejected(self, served):
        pair, stub = served
        with pair.a.session() as session:
            with pytest.raises(MarshalError):
                stub.apply_twice(session, 1, "not-a-function")

    def test_funcref_round_trip_through_forwarding(self, served):
        """A reference forwarded A -> B -> C still calls back to A."""
        pair, stub = served
        runtime_c = pair.add_runtime("C")
        bind_server(runtime_c, APPLY, {
            "map_list": map_list,
            "apply_twice": apply_twice,
        })
        forward = InterfaceDef("forwarding", [
            ProcedureDef(
                "via",
                [Param("x", int32), Param("f", FuncRefType(MAPPER))],
                returns=int32,
            ),
        ])

        def via(ctx, x, f):
            return ctx.call("C", "apply.apply_twice", (x, f))

        bind_server(pair.b, forward, {"via": via})
        pair.b.import_interface(APPLY)
        stub2 = ClientStub(pair.a, forward, "B")
        with pair.a.session() as session:
            result = stub2.via(
                session, 2, pair.a.func_ref(LOCAL_FUNCS, "double")
            )
        assert result == 8
