"""Tests for the textual IDL front-end."""

import pytest

from repro.rpc.idl import IdlError, compile_idl, parse_idl
from repro.xdr.arch import SPARC32
from repro.xdr.types import (
    ArrayType,
    OpaqueType,
    PointerType,
    ScalarType,
    StructType,
)

TREE_IDL = """
// the paper's experimental subject
struct tree_node {
    tree_node *left;
    tree_node *right;
    opaque data[8];
};

interface tree_ops {
    int64 search(tree_node *root, int32 target);
    void ping();
};
"""


class TestStructs:
    def test_tree_node_parses_to_16_bytes(self):
        document = parse_idl(TREE_IDL)
        node = document.struct("tree_node")
        assert node.sizeof(SPARC32) == 16

    def test_recursive_pointer_fields(self):
        document = parse_idl(TREE_IDL)
        node = document.struct("tree_node")
        assert isinstance(node.field("left").spec, PointerType)
        assert node.field("left").spec.target_type_id == "tree_node"

    def test_scalar_fields(self):
        document = parse_idl("""
        struct mixed {
            int8 a;
            uint64 b;
            float64 c;
        };
        """)
        mixed = document.struct("mixed")
        assert isinstance(mixed.field("a").spec, ScalarType)
        assert mixed.field("b").spec.kind.size == 8

    def test_array_fields(self):
        document = parse_idl("""
        struct vec { int32 xs[4]; };
        """)
        spec = document.struct("vec").field("xs").spec
        assert isinstance(spec, ArrayType) and spec.count == 4

    def test_array_of_pointers(self):
        document = parse_idl("""
        struct node { node *next; int32 v; };
        struct table { node *buckets[8]; };
        """)
        spec = document.struct("table").field("buckets").spec
        assert isinstance(spec, ArrayType)
        assert isinstance(spec.element, PointerType)

    def test_by_value_embedding_after_definition(self):
        document = parse_idl("""
        struct point { int32 x; int32 y; };
        struct segment { point a; point b; };
        """)
        segment = document.struct("segment")
        assert isinstance(segment.field("a").spec, StructType)
        assert segment.sizeof(SPARC32) == 16

    def test_by_value_before_definition_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("""
            struct segment { point a; };
            struct point { int32 x; };
            """)

    def test_opaque_field(self):
        document = parse_idl("struct blob { opaque bytes[12]; };")
        assert isinstance(
            document.struct("blob").field("bytes").spec, OpaqueType
        )

    def test_empty_struct_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("struct nothing { };")

    def test_duplicate_struct_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("""
            struct s { int32 v; };
            struct s { int32 w; };
            """)

    def test_dangling_pointer_target_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("struct s { ghost *p; };")


class TestInterfaces:
    def test_procedures_parsed(self):
        document = parse_idl(TREE_IDL)
        interface = document.interface("tree_ops")
        search = interface.procedure("search")
        assert [p.name for p in search.params] == ["root", "target"]
        assert isinstance(search.params[0].spec, PointerType)

    def test_void_return(self):
        document = parse_idl(TREE_IDL)
        assert document.interface("tree_ops").procedure("ping").returns \
            is None

    def test_void_parameter_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("interface i { int32 f(void x); };")

    def test_pointer_to_scalar_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("interface i { int32 f(int32 *p); };")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("union u { int32 v; };")

    def test_garbage_character_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("struct s { int32 v; } $;")

    def test_truncated_input_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("struct s { int32 v;")


class TestEndToEnd:
    def test_parsed_interface_serves_calls(self, smart_pair):
        document = parse_idl(TREE_IDL)
        for runtime in (smart_pair.a, smart_pair.b):
            # tree_node is already registered identically by the
            # fixture; re-registration must be idempotent.
            document.register_types(runtime.resolver)
        from repro.rpc.stubgen import ClientStub, bind_server
        from repro.workloads.traversal import search
        from repro.workloads.trees import build_complete_tree

        interface = document.interface("tree_ops")
        bind_server(
            smart_pair.b,
            interface,
            {"search": search, "ping": lambda ctx: None},
        )
        root = build_complete_tree(smart_pair.a, 15)
        stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            assert stub.search(session, root, 15) == sum(range(15))
            stub.ping(session)

    def test_compile_idl_emits_stub_source(self):
        source = compile_idl(TREE_IDL)
        namespace = {}
        exec(compile(source, "<idl>", "exec"), namespace)
        assert "TreeOpsClient" in namespace

    def test_comments_ignored(self):
        document = parse_idl("""
        // leading comment
        struct s { int32 v; };  // trailing comment
        """)
        assert document.struct("s").field("v").spec.kind.size == 4


class TestFileLoading:
    def test_load_idl_from_file(self, tmp_path):
        from repro.rpc.idl import load_idl

        path = tmp_path / "svc.x"
        path.write_text("struct s { int32 v; };")
        document = load_idl(path)
        assert document.struct("s").sizeof(SPARC32) == 4

    def test_example_inventory_idl_parses(self):
        import pathlib

        from repro.rpc.idl import load_idl

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "interfaces" / "inventory.x"
        )
        document = load_idl(path)
        assert document.interface("inventory").procedure("restock")
        assert document.enum("status").value_of("BACK_ORDER") == 1
