"""Tests for stub generation (runtime proxies and emitted source)."""

import pytest

from repro.rpc.errors import RpcError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.runtime import RpcRuntime
from repro.rpc.stubgen import (
    ClientStub,
    bind_server,
    emit_stub_source,
    interface_signature,
)
from repro.simnet.network import Network
from repro.xdr.arch import SPARC32
from repro.xdr.types import float64, int32

CALC = InterfaceDef("calc_service", [
    ProcedureDef("add", [Param("x", int32), Param("y", int32)],
                 returns=int32),
    ProcedureDef("neg", [Param("x", float64)], returns=float64),
    ProcedureDef("nothing", [], returns=None),
])


@pytest.fixture
def pair():
    network = Network()
    a = RpcRuntime(network, network.add_site("A"), SPARC32)
    b = RpcRuntime(network, network.add_site("B"), SPARC32)
    bind_server(b, CALC, {
        "add": lambda ctx, x, y: x + y,
        "neg": lambda ctx, x: -x,
        "nothing": lambda ctx: None,
    })
    a.import_interface(CALC)
    return a, b


class TestClientStub:
    def test_methods_exist_per_procedure(self, pair):
        a, b = pair
        stub = ClientStub(a, CALC, "B")
        assert callable(stub.add)
        assert callable(stub.neg)
        assert callable(stub.nothing)

    def test_methods_call_remote(self, pair):
        a, b = pair
        stub = ClientStub(a, CALC, "B")
        with a.session() as session:
            assert stub.add(session, 1, 2) == 3
            assert stub.neg(session, 2.5) == -2.5

    def test_method_docstrings_name_destination(self, pair):
        a, b = pair
        stub = ClientStub(a, CALC, "B")
        assert "calc_service.add" in stub.add.__doc__


class TestBindServer:
    def test_missing_implementation_rejected(self, pair):
        a, b = pair
        network = Network()
        fresh = RpcRuntime(network, network.add_site("X"), SPARC32)
        with pytest.raises(RpcError) as info:
            bind_server(fresh, CALC, {"add": lambda ctx, x, y: 0})
        assert "neg" in str(info.value)

    def test_extra_implementation_rejected(self, pair):
        a, b = pair
        network = Network()
        fresh = RpcRuntime(network, network.add_site("X"), SPARC32)
        with pytest.raises(RpcError):
            bind_server(fresh, CALC, {
                "add": lambda ctx, x, y: 0,
                "neg": lambda ctx, x: 0,
                "nothing": lambda ctx: None,
                "undeclared": lambda ctx: 1,
            })


class TestEmittedSource:
    def test_emits_compilable_python(self):
        source = emit_stub_source(CALC)
        compile(source, "<gen>", "exec")

    def test_emitted_class_name_camel_cased(self):
        source = emit_stub_source(CALC)
        assert "class CalcServiceClient:" in source

    def test_emitted_stub_round_trips(self, pair):
        a, b = pair
        namespace = {}
        exec(compile(emit_stub_source(CALC), "<gen>", "exec"), namespace)
        stub = namespace["CalcServiceClient"](a, "B")
        with a.session() as session:
            assert stub.add(session, 10, 20) == 30
            assert stub.nothing(session) is None

    def test_emitted_source_marks_generated(self):
        assert "Auto-generated" in emit_stub_source(CALC)

    def test_single_param_call_emits_tuple(self, pair):
        """Regression: one-arg procedures must send a 1-tuple."""
        a, b = pair
        namespace = {}
        exec(compile(emit_stub_source(CALC), "<gen>", "exec"), namespace)
        stub = namespace["CalcServiceClient"](a, "B")
        with a.session() as session:
            assert stub.neg(session, 1.5) == -1.5


class TestIntrospection:
    def test_interface_signature(self):
        assert interface_signature(CALC) == [
            "calc_service.add",
            "calc_service.neg",
            "calc_service.nothing",
        ]
