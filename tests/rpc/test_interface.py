"""Tests for interface definitions."""

import pytest

from repro.rpc.errors import RpcError
from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.xdr.types import PointerType, int32


def simple_interface():
    return InterfaceDef("math", [
        ProcedureDef("add", [Param("x", int32), Param("y", int32)],
                     returns=int32),
        ProcedureDef("noop", [], returns=None),
    ])


class TestProcedureDef:
    def test_holds_signature(self):
        proc = ProcedureDef("f", [Param("a", int32)], returns=int32)
        assert proc.name == "f"
        assert [p.name for p in proc.params] == ["a"]
        assert proc.returns is int32

    def test_void_return(self):
        assert ProcedureDef("f", []).returns is None

    def test_bad_name_rejected(self):
        with pytest.raises(RpcError):
            ProcedureDef("has space", [])

    def test_duplicate_param_rejected(self):
        with pytest.raises(RpcError):
            ProcedureDef("f", [Param("a", int32), Param("a", int32)])


class TestInterfaceDef:
    def test_lookup_by_name(self):
        interface = simple_interface()
        assert interface.procedure("add").name == "add"

    def test_unknown_procedure_rejected(self):
        with pytest.raises(RpcError):
            simple_interface().procedure("mul")

    def test_qualified_names(self):
        assert simple_interface().qualified("add") == "math.add"

    def test_procedures_in_declaration_order(self):
        names = [p.name for p in simple_interface().procedures]
        assert names == ["add", "noop"]

    def test_duplicate_procedure_rejected(self):
        with pytest.raises(RpcError):
            InterfaceDef("i", [
                ProcedureDef("f", []),
                ProcedureDef("f", []),
            ])

    def test_bad_interface_name_rejected(self):
        with pytest.raises(RpcError):
            InterfaceDef("bad name", [])

    def test_pointer_params_declarable(self):
        interface = InterfaceDef("t", [
            ProcedureDef("walk", [Param("root", PointerType("node"))],
                         returns=int32),
        ])
        spec = interface.procedure("walk").params[0].spec
        assert isinstance(spec, PointerType)
