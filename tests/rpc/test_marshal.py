"""Tests for argument/result marshalling."""

import pytest

from repro.rpc import marshal
from repro.rpc.errors import MarshalError, PointerNotSupportedError
from repro.rpc.interface import Param, ProcedureDef
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    float32,
    float64,
    int8,
    int16,
    int32,
    int64,
    uint32,
    uint64,
)


def round_trip_value(spec, value):
    encoder = XdrEncoder()
    marshal.pack_value(encoder, spec, value)
    decoder = XdrDecoder(encoder.getvalue())
    result = marshal.unpack_value(decoder, spec)
    decoder.expect_done()
    return result


class TestScalars:
    @pytest.mark.parametrize("spec,value", [
        (int8, -5), (int16, 1000), (int32, -(2**31)), (int64, 2**60),
        (uint32, 2**32 - 1), (uint64, 2**64 - 1),
        (float64, 2.5), (float32, 0.25),
    ])
    def test_round_trip(self, spec, value):
        assert round_trip_value(spec, value) == value

    def test_int_given_float_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(int32, 1.5)

    def test_int_given_bool_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(int32, True)

    def test_float_given_string_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(float64, "x")

    def test_out_of_range_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(int32, 2**40)


class TestAggregates:
    def test_opaque_round_trip(self):
        assert round_trip_value(OpaqueType(4), b"abcd") == b"abcd"

    def test_opaque_wrong_length_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(OpaqueType(4), b"ab")

    def test_array_round_trip(self):
        assert round_trip_value(ArrayType(int32, 3), [1, 2, 3]) == [1, 2, 3]

    def test_array_wrong_count_rejected(self):
        with pytest.raises(MarshalError):
            round_trip_value(ArrayType(int32, 3), [1, 2])

    def test_struct_round_trip(self):
        spec = StructType("pair", [Field("a", int32), Field("b", float64)])
        assert round_trip_value(spec, {"a": 1, "b": 2.0}) == {
            "a": 1, "b": 2.0,
        }

    def test_struct_missing_field_rejected(self):
        spec = StructType("pair", [Field("a", int32), Field("b", int32)])
        with pytest.raises(MarshalError):
            round_trip_value(spec, {"a": 1})

    def test_struct_extra_field_rejected(self):
        spec = StructType("pair", [Field("a", int32)])
        with pytest.raises(MarshalError):
            round_trip_value(spec, {"a": 1, "z": 2})

    def test_nested_struct_round_trip(self):
        inner = StructType("inner", [Field("v", int32)])
        outer = StructType("outer", [
            Field("i", inner),
            Field("tags", ArrayType(OpaqueType(2), 2)),
        ])
        value = {"i": {"v": 9}, "tags": [b"ab", b"cd"]}
        assert round_trip_value(outer, value) == value


class TestPointersRefused:
    """The conventional marshaller reproduces the paper's restriction."""

    def test_pack_pointer_refused(self):
        with pytest.raises(PointerNotSupportedError):
            marshal.pack_value(XdrEncoder(), PointerType("t"), 0x10)

    def test_unpack_pointer_refused(self):
        with pytest.raises(PointerNotSupportedError):
            marshal.unpack_value(XdrDecoder(b""), PointerType("t"))

    def test_pointer_inside_struct_refused(self):
        spec = StructType("s", [Field("p", PointerType("t"))])
        with pytest.raises(PointerNotSupportedError):
            marshal.pack_value(XdrEncoder(), spec, {"p": 0x10})

    def test_custom_hook_accepts_pointer(self):
        calls = []

        def hook(encoder, pointer, type_id):
            calls.append((pointer, type_id))
            encoder.pack_uint32(pointer)

        marshal.pack_value(XdrEncoder(), PointerType("t"), 0x20, hook)
        assert calls == [(0x20, "t")]


class TestArgumentVectors:
    PROC = ProcedureDef(
        "f", [Param("a", int32), Param("b", OpaqueType(2))], returns=int64
    )

    def test_args_round_trip(self):
        encoder = XdrEncoder()
        marshal.pack_args(encoder, self.PROC, [5, b"hi"])
        decoder = XdrDecoder(encoder.getvalue())
        assert marshal.unpack_args(decoder, self.PROC) == [5, b"hi"]

    def test_wrong_arity_rejected(self):
        with pytest.raises(MarshalError):
            marshal.pack_args(XdrEncoder(), self.PROC, [5])

    def test_result_round_trip(self):
        encoder = XdrEncoder()
        marshal.pack_result(encoder, self.PROC, 77)
        decoder = XdrDecoder(encoder.getvalue())
        assert marshal.unpack_result(decoder, self.PROC) == 77

    def test_void_result(self):
        void = ProcedureDef("g", [])
        encoder = XdrEncoder()
        marshal.pack_result(encoder, void, None)
        assert encoder.getvalue() == b""
        assert marshal.unpack_result(XdrDecoder(b""), void) is None

    def test_void_result_with_value_rejected(self):
        void = ProcedureDef("g", [])
        with pytest.raises(MarshalError):
            marshal.pack_result(XdrEncoder(), void, 1)
