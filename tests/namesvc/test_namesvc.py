"""Tests for the type name server and resolver."""

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.xdr.errors import XdrError
from repro.xdr.registry import TypeRegistry
from repro.xdr.types import Field, PointerType, StructType, int32

NODE = StructType("node", [
    Field("next", PointerType("node")),
    Field("value", int32),
])


@pytest.fixture
def world():
    network = Network()
    server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    site = network.add_site("A")
    resolver = TypeResolver(site, "NS")
    return network, server, resolver


class TestResolution:
    def test_resolves_from_server(self, world):
        network, server, resolver = world
        server.publish("node", NODE)
        assert resolver.resolve("node") == NODE

    def test_unknown_type_raises(self, world):
        network, server, resolver = world
        with pytest.raises(XdrError):
            resolver.resolve("mystery")

    def test_local_registration_skips_network(self, world):
        network, server, resolver = world
        resolver.register("node", NODE)
        before = network.stats.total_messages
        resolver.resolve("node")
        assert network.stats.total_messages == before
        assert resolver.queries_sent == 0

    def test_result_cached_after_first_query(self, world):
        network, server, resolver = world
        server.publish("node", NODE)
        resolver.resolve("node")
        first = network.stats.total_messages
        resolver.resolve("node")
        assert network.stats.total_messages == first
        assert resolver.queries_sent == 1

    def test_knows_reflects_cache(self, world):
        network, server, resolver = world
        server.publish("node", NODE)
        assert not resolver.knows("node")
        resolver.resolve("node")
        assert resolver.knows("node")

    def test_query_charges_simulated_time(self, world):
        network, server, resolver = world
        server.publish("node", NODE)
        before = network.clock.now
        resolver.resolve("node")
        assert network.clock.now > before


class TestServerlessResolver:
    def test_acts_as_local_registry(self):
        network = Network()
        site = network.add_site("A")
        resolver = TypeResolver(site, server_site_id=None)
        resolver.register("node", NODE)
        assert resolver.resolve("node") == NODE
        with pytest.raises(XdrError):
            resolver.resolve("other")


class TestMultiSite:
    def test_two_sites_see_same_definition(self):
        network = Network()
        server = TypeNameServer(network.add_site("NS"), TypeRegistry())
        server.publish("node", NODE)
        resolvers = []
        for site_id in ("A", "B"):
            site = network.add_site(site_id)
            resolvers.append(TypeResolver(site, "NS"))
        assert resolvers[0].resolve("node") == resolvers[1].resolve("node")
