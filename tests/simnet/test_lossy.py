"""Tests for the lossy transport: retransmission and at-most-once."""

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.clock import CostModel
from repro.simnet.message import MessageKind
from repro.simnet.network import Network, TransportError
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import build_complete_tree, register_tree_types
from repro.xdr.arch import SPARC32
from repro.xdr.registry import TypeRegistry


def lossy_network(rate, seed=7):
    return Network(
        cost_model=CostModel(message_latency=1e-4),
        loss_rate=rate,
        loss_seed=seed,
    )


class TestRawExchanges:
    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            Network(loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(loss_rate=-0.1)

    def test_handler_runs_exactly_once_per_logical_send(self):
        network = lossy_network(0.4)
        network.add_site("A")
        b = network.add_site("B")
        executions = []
        b.register_handler(
            MessageKind.CALL,
            lambda m: executions.append(m.payload) or b"ok",
        )
        for index in range(30):
            reply = network.send(
                "A", "B", MessageKind.CALL,
                str(index).encode(), MessageKind.REPLY,
            )
            assert reply == b"ok"
        assert len(executions) == 30  # no duplicate executions

    def test_retransmissions_counted_as_messages(self):
        network = lossy_network(0.4)
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"ok")
        for _ in range(20):
            network.send("A", "B", MessageKind.CALL, b"x",
                         MessageKind.REPLY)
        # 20 exchanges at 40% loss need strictly more than 40 messages.
        assert network.stats.total_messages > 40

    def test_timeouts_charge_simulated_time(self):
        lossless = lossy_network(0.0)
        lossy = lossy_network(0.5)
        for network in (lossless, lossy):
            network.add_site("A")
            b = network.add_site("B")
            b.register_handler(MessageKind.CALL, lambda m: b"")
            for _ in range(20):
                network.send("A", "B", MessageKind.CALL, b"x",
                             MessageKind.REPLY)
        assert lossy.clock.now > lossless.clock.now

    def test_pathological_loss_raises_transport_error(self):
        network = lossy_network(0.99, seed=3)
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"")
        with pytest.raises(TransportError):
            for _ in range(200):
                network.send("A", "B", MessageKind.CALL, b"x",
                             MessageKind.REPLY)

    def test_deterministic_for_seed(self):
        def run(seed):
            network = lossy_network(0.3, seed=seed)
            network.add_site("A")
            b = network.add_site("B")
            b.register_handler(MessageKind.CALL, lambda m: b"ok")
            for _ in range(10):
                network.send("A", "B", MessageKind.CALL, b"x",
                             MessageKind.REPLY)
            return network.stats.total_messages, network.clock.now

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestSmartRpcOverLossyTransport:
    def test_remote_search_correct_despite_loss(self):
        network = Network(loss_rate=0.15, loss_seed=11)
        TypeNameServer(network.add_site("NS"), TypeRegistry())
        runtimes = []
        for site_id in ("A", "B"):
            site = network.add_site(site_id)
            runtime = SmartRpcRuntime(
                network, site, SPARC32,
                resolver=TypeResolver(site, "NS"),
            )
            register_tree_types(runtime)
            runtimes.append(runtime)
        caller, callee = runtimes
        root = build_complete_tree(caller, 63)
        bind_tree_server(callee)
        stub = tree_client(caller, "B")
        with caller.session() as session:
            assert stub.search(session, root, 63) == (
                expected_search_checksum(63, 63)
            )

    def test_updates_survive_lossy_write_back(self):
        network = Network(loss_rate=0.15, loss_seed=13)
        TypeNameServer(network.add_site("NS"), TypeRegistry())
        runtimes = []
        for site_id in ("A", "B"):
            site = network.add_site(site_id)
            runtime = SmartRpcRuntime(
                network, site, SPARC32,
                resolver=TypeResolver(site, "NS"),
            )
            register_tree_types(runtime)
            runtimes.append(runtime)
        caller, callee = runtimes
        root = build_complete_tree(caller, 15)
        bind_tree_server(callee)
        stub = tree_client(caller, "B")
        with caller.session() as session:
            stub.search_update(session, root, 15)
        spec = caller.resolver.resolve("tree_node")
        layout = spec.layout(caller.arch)
        data = caller.space.read_raw(root + layout.offsets["data"], 8)
        assert int.from_bytes(data, "big") == 1
