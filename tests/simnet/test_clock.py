"""Tests for the simulated clock and cost model."""

import pytest

from repro.simnet.clock import CostModel, SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_advance_zero_is_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_reset_rewinds(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 0.0


class TestStopwatch:
    def test_measures_interval(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_restart_begins_new_interval(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(1.0)
        watch.restart()
        clock.advance(0.5)
        assert watch.elapsed == pytest.approx(0.5)


class TestCostModel:
    def test_message_cost_includes_latency_and_bytes(self):
        model = CostModel(message_latency=1e-3, byte_wire=1e-6)
        assert model.message_cost(0) == pytest.approx(1e-3)
        assert model.message_cost(1000) == pytest.approx(2e-3)

    def test_codec_cost_is_per_byte(self):
        model = CostModel(byte_codec=2e-6)
        assert model.codec_cost(500) == pytest.approx(1e-3)

    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.message_latency > 0
        assert model.byte_wire > 0
        assert model.byte_codec > 0
        assert model.page_fault > 0

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.message_latency = 1.0
