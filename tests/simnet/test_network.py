"""Tests for the simulated network and sites."""

import pytest

from repro.simnet.clock import CostModel
from repro.simnet.message import MessageKind
from repro.simnet.network import Network, NetworkError


@pytest.fixture
def network():
    return Network(cost_model=CostModel(message_latency=1e-3,
                                        byte_wire=1e-6))


def echo_handler(message):
    return message.payload


class TestSiteRegistration:
    def test_add_and_lookup(self, network):
        site = network.add_site("A")
        assert network.site("A") is site
        assert site.site_id == "A"

    def test_duplicate_site_rejected(self, network):
        network.add_site("A")
        with pytest.raises(NetworkError):
            network.add_site("A")

    def test_unknown_site_rejected(self, network):
        with pytest.raises(NetworkError):
            network.site("nope")

    def test_site_ids_in_registration_order(self, network):
        for site_id in ("C", "A", "B"):
            network.add_site(site_id)
        assert network.site_ids == ["C", "A", "B"]


class TestSend:
    def test_round_trip_payload(self, network):
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, echo_handler)
        reply = network.send(
            "A", "B", MessageKind.CALL, b"hello", MessageKind.REPLY
        )
        assert reply == b"hello"

    def test_send_from_unknown_source_rejected(self, network):
        network.add_site("B")
        with pytest.raises(NetworkError):
            network.send("ghost", "B", MessageKind.CALL, b"", None)

    def test_no_handler_raises(self, network):
        network.add_site("A")
        network.add_site("B")
        with pytest.raises(NetworkError):
            network.send("A", "B", MessageKind.CALL, b"x", MessageKind.REPLY)

    def test_one_way_message_must_not_reply(self, network):
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.INVALIDATE, echo_handler)
        with pytest.raises(NetworkError):
            network.send("A", "B", MessageKind.INVALIDATE, b"data", None)

    def test_one_way_message_ok_with_empty_reply(self, network):
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.INVALIDATE, lambda m: b"")
        out = network.send("A", "B", MessageKind.INVALIDATE, b"data", None)
        assert out == b""

    def test_clock_charged_per_message(self, network):
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"")
        before = network.clock.now
        network.send("A", "B", MessageKind.CALL, b"x" * 1000,
                     MessageKind.REPLY)
        elapsed = network.clock.now - before
        # request: 1ms + 1000us; reply: 1ms + 0 -> 3.0 ms total
        assert elapsed == pytest.approx(3.0e-3)

    def test_stats_count_messages_and_bytes(self, network):
        network.add_site("A")
        b = network.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"yz")
        network.send("A", "B", MessageKind.CALL, b"abcd", MessageKind.REPLY)
        assert network.stats.total_messages == 2
        assert network.stats.total_bytes == 6
        assert network.stats.messages_by_kind[MessageKind.CALL] == 1
        assert network.stats.messages_by_kind[MessageKind.REPLY] == 1


class TestMulticast:
    def test_multicast_reaches_everyone_but_sender(self, network):
        received = []
        network.add_site("A")
        for site_id in ("B", "C", "D"):
            site = network.add_site(site_id)
            site.register_handler(
                MessageKind.INVALIDATE,
                lambda m, sid=site_id: received.append(sid) or b"",
            )
        network.multicast("A", MessageKind.INVALIDATE, b"bye")
        assert sorted(received) == ["B", "C", "D"]

    def test_multicast_charges_per_destination(self, network):
        network.add_site("A")
        for site_id in ("B", "C"):
            site = network.add_site(site_id)
            site.register_handler(MessageKind.INVALIDATE, lambda m: b"")
        before = network.clock.now
        network.multicast("A", MessageKind.INVALIDATE, b"")
        assert network.clock.now - before == pytest.approx(2e-3)


class TestNestedDelivery:
    def test_handler_can_send_nested_messages(self, network):
        """B's handler calls C before replying (nested synchronous RPC)."""
        network.add_site("A")
        b = network.add_site("B")
        c = network.add_site("C")
        c.register_handler(MessageKind.CALL, lambda m: b"from-c")

        def relay(message):
            inner = b.send(
                "C", MessageKind.CALL, b"fwd", MessageKind.REPLY
            )
            return b"b-saw-" + inner

        b.register_handler(MessageKind.CALL, relay)
        reply = network.send("A", "B", MessageKind.CALL, b"go",
                             MessageKind.REPLY)
        assert reply == b"b-saw-from-c"
        assert network.stats.total_messages == 4
