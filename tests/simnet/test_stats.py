"""Tests for statistics collection and tracing."""

from repro.simnet.message import Message, MessageKind
from repro.simnet.stats import StatsCollector, merged_counter, optional_stats


def _message(kind=MessageKind.CALL, size=10):
    return Message(src="A", dst="B", kind=kind, payload=b"x" * size)


class TestCounters:
    def test_initially_zero(self):
        stats = StatsCollector()
        assert stats.total_messages == 0
        assert stats.total_bytes == 0
        assert stats.callbacks == 0

    def test_record_message(self):
        stats = StatsCollector()
        stats.record_message(_message(size=5))
        stats.record_message(_message(MessageKind.REPLY, size=7))
        assert stats.total_messages == 2
        assert stats.total_bytes == 12

    def test_callbacks_count_data_requests_only(self):
        stats = StatsCollector()
        stats.record_message(_message(MessageKind.DATA_REQUEST))
        stats.record_message(_message(MessageKind.DATA_REPLY))
        stats.record_message(_message(MessageKind.CALL))
        assert stats.callbacks == 1

    def test_reset_zeroes_everything(self):
        stats = StatsCollector(trace=True)
        stats.record_message(_message())
        stats.page_faults = 3
        stats.record_event(1.0, "x", "y")
        stats.reset()
        assert stats.total_messages == 0
        assert stats.page_faults == 0
        assert stats.events == []

    def test_summary_mentions_key_counters(self):
        stats = StatsCollector()
        stats.record_message(_message(MessageKind.DATA_REQUEST, size=3))
        text = stats.summary()
        assert "callbacks" in text
        assert "messages: 1 (3 bytes)" in text


class TestTrace:
    def test_trace_disabled_by_default(self):
        stats = StatsCollector()
        stats.record_event(0.5, "message", "detail")
        assert stats.events == []

    def test_trace_enabled_records(self):
        stats = StatsCollector(trace=True)
        stats.record_event(0.5, "message", "detail")
        assert len(stats.events) == 1
        assert stats.events[0].time == 0.5
        assert stats.events[0].category == "message"

    def test_events_in_filters_by_category(self):
        stats = StatsCollector(trace=True)
        stats.record_event(0.1, "message", "a")
        stats.record_event(0.2, "fault", "b")
        stats.record_event(0.3, "message", "c")
        assert [e.detail for e in stats.events_in("message")] == ["a", "c"]


class TestHelpers:
    def test_merged_counter_sums(self):
        first, second = StatsCollector(), StatsCollector()
        first.record_message(_message())
        second.record_message(_message())
        second.record_message(_message(MessageKind.REPLY))
        merged = merged_counter([first, second])
        assert merged[MessageKind.CALL] == 2
        assert merged[MessageKind.REPLY] == 1

    def test_optional_stats_passthrough_and_fresh(self):
        stats = StatsCollector()
        assert optional_stats(stats) is stats
        fresh = optional_stats(None)
        assert isinstance(fresh, StatsCollector)
