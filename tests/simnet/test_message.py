"""Tests for network messages."""

from repro.simnet.message import Message, MessageKind


class TestMessage:
    def test_size_is_payload_length(self):
        message = Message("A", "B", MessageKind.CALL, b"12345")
        assert message.size == 5

    def test_ids_are_unique_and_increasing(self):
        first = Message("A", "B", MessageKind.CALL, b"")
        second = Message("A", "B", MessageKind.CALL, b"")
        assert second.msg_id > first.msg_id

    def test_kind_values_stable(self):
        # Wire-protocol identifiers: renaming one is a compatibility
        # break, so pin them.
        assert MessageKind.CALL.value == "call"
        assert MessageKind.DATA_REQUEST.value == "data_request"
        assert MessageKind.WRITE_BACK.value == "write_back"
        assert MessageKind.INVALIDATE.value == "invalidate"
        assert MessageKind.MEMORY_BATCH.value == "memory_batch"

    def test_all_kinds_have_distinct_values(self):
        values = [kind.value for kind in MessageKind]
        assert len(values) == len(set(values))
