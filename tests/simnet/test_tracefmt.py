"""Tests for trace formatting."""

from repro.simnet.stats import StatsCollector, TraceEvent
from repro.simnet.tracefmt import format_timeline, summarize_trace


def events():
    return [
        TraceEvent(0.001, "message", "A->B call"),
        TraceEvent(0.002, "fault", "page 5 read"),
        TraceEvent(0.003, "message", "B->A data_request"),
    ]


class TestFormatTimeline:
    def test_all_events_rendered(self):
        text = format_timeline(events())
        assert "A->B call" in text
        assert "page 5 read" in text
        assert text.splitlines()[0].startswith("t (ms)")

    def test_times_in_milliseconds(self):
        text = format_timeline(events())
        assert "1.000" in text and "3.000" in text

    def test_category_filter(self):
        text = format_timeline(events(), categories=["fault"])
        assert "page 5 read" in text
        assert "A->B call" not in text

    def test_limit_notes_dropped_events(self):
        text = format_timeline(events(), limit=1)
        assert "2 more events" in text

    def test_empty_trace(self):
        text = format_timeline([])
        assert text.splitlines()[0].startswith("t (ms)")


class TestSummarizeTrace:
    def test_with_events(self):
        stats = StatsCollector(trace=True)
        stats.record_event(0.5, "message", "x")
        stats.record_event(0.7, "message", "y")
        text = summarize_trace(stats)
        assert "2 events" in text
        assert "500.000 ms" in text

    def test_without_events(self):
        text = summarize_trace(StatsCollector())
        assert "no events" in text


class TestEndToEndTracing:
    def test_network_trace_records_messages(self, network):
        from repro.simnet.network import Network
        from repro.simnet.stats import StatsCollector
        from repro.simnet.message import MessageKind

        traced = Network(stats=StatsCollector(trace=True))
        traced.add_site("A")
        b = traced.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"")
        traced.send("A", "B", MessageKind.CALL, b"x", MessageKind.REPLY)
        text = format_timeline(traced.stats.events)
        assert "A->B call" in text
        assert "B->A reply" in text
