"""Tests for trace formatting."""

import pytest

from repro.simnet.stats import StatsCollector, TraceEvent
from repro.simnet.tracefmt import (
    TraceFormatError,
    format_timeline,
    load_trace,
    save_trace,
    summarize_trace,
    validate_event,
)


def events():
    return [
        TraceEvent(0.001, "message", "A->B call"),
        TraceEvent(0.002, "fault", "page 5 read"),
        TraceEvent(0.003, "message", "B->A data_request"),
    ]


class TestFormatTimeline:
    def test_all_events_rendered(self):
        text = format_timeline(events())
        assert "A->B call" in text
        assert "page 5 read" in text
        assert text.splitlines()[0].startswith("t (ms)")

    def test_times_in_milliseconds(self):
        text = format_timeline(events())
        assert "1.000" in text and "3.000" in text

    def test_category_filter(self):
        text = format_timeline(events(), categories=["fault"])
        assert "page 5 read" in text
        assert "A->B call" not in text

    def test_limit_notes_dropped_events(self):
        text = format_timeline(events(), limit=1)
        assert "2 more events" in text

    def test_empty_trace(self):
        text = format_timeline([])
        assert text.splitlines()[0].startswith("t (ms)")


class TestSummarizeTrace:
    def test_with_events(self):
        stats = StatsCollector(trace=True)
        stats.record_event(0.5, "message", "x")
        stats.record_event(0.7, "message", "y")
        text = summarize_trace(stats)
        assert "2 events" in text
        assert "500.000 ms" in text

    def test_without_events(self):
        text = summarize_trace(StatsCollector())
        assert "no events" in text


def stamped_event(**overrides):
    data = {
        "session": "s-1",
        "space": "A",
        "page": 0,
        "kind": "read",
        "version": 0,
        "site": "A",
        "seq": 0,
        "vc": {"A": 1},
    }
    data.update(overrides)
    for key, value in list(data.items()):
        if value is None:
            del data[key]
    return TraceEvent(0.0, "fault", "A: fault", data)


class TestSaveTraceValidation:
    """Schema revision 2: malformed events fail at record time."""

    def test_valid_protocol_event_saves(self, tmp_path):
        path = tmp_path / "ok.trace"
        save_trace([stamped_event()], path)
        assert len(load_trace(path)) == 1

    @pytest.mark.parametrize("field", ["session", "site", "seq", "vc"])
    def test_missing_stamp_field_raises(self, tmp_path, field):
        event = stamped_event(**{field: None})
        with pytest.raises(TraceFormatError) as excinfo:
            save_trace([event], tmp_path / "bad.trace")
        assert "fault event" in str(excinfo.value)
        assert not (tmp_path / "bad.trace").exists()

    def test_bad_clock_type_raises(self):
        with pytest.raises(TraceFormatError):
            validate_event(stamped_event(vc={"A": "one"}))

    def test_negative_seq_raises(self):
        with pytest.raises(TraceFormatError):
            validate_event(stamped_event(seq=-1))

    def test_carrier_events_are_exempt(self, tmp_path):
        message = TraceEvent(0.0, "message", "A->B call", {
            "src": "A", "dst": "B", "kind": "call", "size": 4,
        })
        timeout = TraceEvent(0.1, "timeout", "retransmitting")
        save_trace([message, timeout], tmp_path / "ok.trace")
        assert len(load_trace(tmp_path / "ok.trace")) == 2

    def test_escape_hatch_skips_validation(self, tmp_path):
        event = stamped_event(vc=None)
        path = tmp_path / "legacy.trace"
        save_trace([event], path, validate=False)
        assert len(load_trace(path)) == 1

    def test_error_names_the_offending_line(self, tmp_path):
        events = [stamped_event(), stamped_event(session=None)]
        with pytest.raises(TraceFormatError) as excinfo:
            save_trace(events, tmp_path / "bad.trace")
        assert "line 2" in str(excinfo.value)


class TestEndToEndTracing:
    def test_network_trace_records_messages(self, network):
        from repro.simnet.network import Network
        from repro.simnet.stats import StatsCollector
        from repro.simnet.message import MessageKind

        traced = Network(stats=StatsCollector(trace=True))
        traced.add_site("A")
        b = traced.add_site("B")
        b.register_handler(MessageKind.CALL, lambda m: b"")
        traced.send("A", "B", MessageKind.CALL, b"x", MessageKind.REPLY)
        text = format_timeline(traced.stats.events)
        assert "A->B call" in text
        assert "B->A reply" in text
