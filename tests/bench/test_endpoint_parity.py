"""Endpoint parity: the Figure 6 sweep's extremes ARE the presets.

The paper's claim (§3.3) is that the eagerness spectrum subsumes both
baselines: closure size 0 is the fully lazy method and an unbounded
closure the eager endpoint.  These regressions pin the claim down
byte-for-byte — sweeping the proposed method to an extreme must
reproduce the corresponding preset's every transfer counter, so the
collapse of the baseline classes into policies lost nothing.
"""

import itertools

import pytest

import repro.rpc.session as rpc_session
from repro.bench.harness import (
    PROPOSED,
    make_world,
    run_hash_call,
    run_tree_call,
)
from repro.smartrpc.cache import ISOLATED
from repro.smartrpc.policy import UNBOUNDED

#: Every ExperimentRun field that must match, including the
#: shipped-vs-touched ledger — only the method label and time differ.
PARITY_FIELDS = (
    "callbacks",
    "messages",
    "bytes_moved",
    "page_faults",
    "write_faults",
    "entries",
    "result",
    "closure_shipped",
    "closure_touched",
    "prefetch_shipped",
    "prefetch_touched",
)


def _align_session_ids():
    """Pin the process-global session counter for one compared pair
    (session-id strings pad to XDR words; a digit-count change would
    shift ``bytes_moved``)."""
    rpc_session._session_numbers = itertools.count(100)


def _assert_parity(sweep, preset):
    for name in PARITY_FIELDS:
        assert getattr(sweep, name) == getattr(preset, name), name


class TestLazyEndpoint:
    """Closure 0 + isolated placeholders == the ``lazy`` preset."""

    @pytest.mark.parametrize("ratio", [0.1, 1.0])
    def test_tree_search_matches(self, ratio):
        _align_session_ids()
        sweep = run_tree_call(
            make_world(
                PROPOSED, closure_size=0, allocation_strategy=ISOLATED
            ),
            63,
            "search",
            ratio=ratio,
        )
        preset = run_tree_call(
            make_world("lazy"), 63, "search", ratio=ratio
        )
        _assert_parity(sweep, preset)
        assert sweep.prefetch_shipped == 0

    def test_tree_update_matches(self):
        _align_session_ids()
        sweep = run_tree_call(
            make_world(
                PROPOSED, closure_size=0, allocation_strategy=ISOLATED
            ),
            31,
            "search_update",
            ratio=0.5,
        )
        preset = run_tree_call(
            make_world("lazy"), 31, "search_update", ratio=0.5
        )
        _assert_parity(sweep, preset)

    def test_hash_lookup_matches(self):
        _align_session_ids()
        sweep = run_hash_call(
            make_world(
                PROPOSED, closure_size=0, allocation_strategy=ISOLATED
            ),
            60,
            4,
        )
        preset = run_hash_call(make_world("lazy"), 60, 4)
        _assert_parity(sweep, preset)


class TestEagerEndpoint:
    """An unbounded closure == the ``eager`` preset."""

    @pytest.mark.parametrize("ratio", [0.1, 1.0])
    def test_tree_search_matches(self, ratio):
        _align_session_ids()
        sweep = run_tree_call(
            make_world(PROPOSED, closure_size=UNBOUNDED),
            63,
            "search",
            ratio=ratio,
        )
        preset = run_tree_call(
            make_world("eager"), 63, "search", ratio=ratio
        )
        _assert_parity(sweep, preset)
        assert sweep.callbacks <= 1

    def test_hash_lookup_matches(self):
        _align_session_ids()
        sweep = run_hash_call(
            make_world(PROPOSED, closure_size=UNBOUNDED), 60, 4
        )
        preset = run_hash_call(make_world("eager"), 60, 4)
        _assert_parity(sweep, preset)
