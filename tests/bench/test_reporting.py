"""Tests for table rendering."""

from repro.bench.reporting import format_series, format_table


class TestFormatTable:
    def test_contains_title_headers_rows(self):
        text = format_table(
            "My Table", ["a", "bb"], [(1, 2.5), (10, 0.125)]
        )
        assert "My Table" in text
        assert "a" in text and "bb" in text
        assert "2.500" in text and "0.125" in text

    def test_columns_aligned(self):
        text = format_table("T", ["col"], [(1,), (100,)])
        lines = text.splitlines()
        data_lines = lines[3:]
        assert len(set(len(line) for line in data_lines)) == 1

    def test_empty_rows_ok(self):
        text = format_table("T", ["x"], [])
        assert "T" in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("lazy", [(0.0, 1.0), (0.5, 2.25)])
        assert text.startswith("lazy:")
        assert "0=1.000" in text
        assert "0.5=2.250" in text
