"""Tests for the ASCII chart renderer."""

from repro.bench.ascii_chart import render_chart


class TestRenderChart:
    def test_markers_use_series_initials(self):
        text = render_chart({
            "lazy": [(0.0, 0.0), (1.0, 10.0)],
            "proposed": [(0.0, 0.0), (1.0, 3.0)],
        })
        assert "L" in text and "P" in text

    def test_legend_present(self):
        text = render_chart({"eager": [(0, 1), (1, 1)]})
        assert "E=eager" in text

    def test_empty_series(self):
        assert render_chart({}) == "(no data)"
        assert render_chart({"x": []}) == "(no data)"

    def test_extremes_plotted_at_edges(self):
        text = render_chart({"s": [(0.0, 0.0), (1.0, 1.0)]},
                            height=5, width=20)
        lines = [line for line in text.splitlines() if "|" in line]
        top_row = lines[0].split("|", 1)[1]
        bottom_row = lines[-1].split("|", 1)[1]
        assert top_row.rstrip().endswith("S")   # max at top right
        assert bottom_row.startswith("S")        # min at bottom left

    def test_y_axis_labels_span_range(self):
        text = render_chart({"s": [(0, 0.0), (1, 12.0)]})
        assert "12.000" in text
        assert "0.000" in text

    def test_y_label_line(self):
        text = render_chart({"s": [(0, 1)]}, y_label="seconds")
        assert text.splitlines()[0] == "seconds"

    def test_flat_series_does_not_crash(self):
        text = render_chart({"flat": [(0, 5.0), (1, 5.0), (2, 5.0)]})
        assert "F" in text
