"""Tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL_EXPERIMENTS


class TestListing:
    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["does_not_exist"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRunning:
    def test_table1_runs_and_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "LongPointer" in out

    def test_quick_fig4_runs(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "fully lazy" in out

    def test_quick_fig7_runs(self, capsys):
        assert main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "updated/not" in out

    def test_ablation_malloc_runs(self, capsys):
        assert main(["ablation_malloc"]) == 0
        out = capsys.readouterr().out
        assert "batched" in out

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "ablation_alloc",
            "ablation_closure",
            "ablation_malloc",
            "ablation_hints",
            "ablation_adaptive",
        }

    def test_policy_flag_reaches_the_experiment(self, capsys):
        assert main(["fig5", "--quick", "--policy", "adaptive"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_closure_order_flag_reaches_the_experiment(self, capsys):
        assert main(["fig5", "--quick", "--closure-order", "dfs"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unsupported_flag_is_skipped_with_a_note(self, capsys):
        assert main(["table1", "--policy", "adaptive"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "policy" in captured.err
