"""Tests for the experiment harness."""

import pytest

from repro.baselines.eager import FullyEagerRpc
from repro.baselines.lazy import FullyLazyRpc
from repro.bench.harness import (
    FULLY_EAGER,
    FULLY_LAZY,
    METHODS,
    PROPOSED,
    make_world,
    run_tree_call,
)
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import expected_search_checksum


class TestMakeWorld:
    def test_proposed_world_uses_smart_runtimes(self):
        world = make_world(PROPOSED)
        assert isinstance(world.caller, SmartRpcRuntime)
        assert isinstance(world.callee, SmartRpcRuntime)

    def test_eager_world(self):
        world = make_world(FULLY_EAGER)
        assert isinstance(world.caller, FullyEagerRpc)

    def test_lazy_world(self):
        world = make_world(FULLY_LAZY)
        assert isinstance(world.caller, FullyLazyRpc)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_world("telepathy")

    def test_closure_size_propagates(self):
        world = make_world(PROPOSED, closure_size=1234)
        assert world.callee.closure_size == 1234

    def test_default_architecture_is_sparc(self):
        world = make_world(PROPOSED)
        assert world.caller.arch.name == "sparc32"
        assert world.callee.arch.name == "sparc32"


class TestRunTreeCall:
    @pytest.mark.parametrize("method", METHODS)
    def test_search_result_is_correct_for_every_method(self, method):
        world = make_world(method)
        run = run_tree_call(world, 63, "search", ratio=1.0)
        assert run.result == expected_search_checksum(63, 63)
        assert run.seconds > 0
        assert run.messages >= 2

    def test_ratio_zero_is_nearly_free_for_lazy(self):
        world = make_world(FULLY_LAZY)
        run = run_tree_call(world, 63, "search", ratio=0.0)
        assert run.callbacks == 0

    def test_search_repeat_runs(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "search_repeat", repeats=3)
        assert run.result == 3 * sum(range(63))

    def test_path_search_runs(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "path_search", repeats=4, seed=9)
        assert run.callbacks >= 1

    def test_unknown_procedure_rejected(self):
        world = make_world(PROPOSED)
        with pytest.raises(ValueError):
            run_tree_call(world, 63, "teleport", ratio=0.1)

    def test_stats_reset_before_measurement(self):
        world = make_world(PROPOSED)
        run_tree_call(world, 63, "search", ratio=1.0)
        # a second run on a fresh world is comparable
        world2 = make_world(PROPOSED)
        run2 = run_tree_call(world2, 63, "search", ratio=1.0)
        assert run2.messages > 0

    def test_row_shape(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "search", ratio=0.5)
        row = run.row()
        assert row[0] == PROPOSED
        assert len(row) == 5
