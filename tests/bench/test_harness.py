"""Tests for the experiment harness."""

import pytest

from repro.baselines.eager import FullyEagerRpc
from repro.bench.harness import (
    FULLY_EAGER,
    FULLY_LAZY,
    METHODS,
    POLICIES,
    PROPOSED,
    make_world,
    resolve_policy,
    run_hash_call,
    run_tree_call,
)
from repro.smartrpc.policy import GraphcopyPolicy, make_policy
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import expected_search_checksum


class TestMakeWorld:
    def test_proposed_world_uses_smart_runtimes(self):
        world = make_world(PROPOSED)
        assert isinstance(world.caller, SmartRpcRuntime)
        assert isinstance(world.callee, SmartRpcRuntime)

    def test_eager_world_runs_the_graphcopy_policy(self):
        world = make_world(FULLY_EAGER)
        assert isinstance(world.caller, SmartRpcRuntime)
        assert isinstance(world.caller.policy, GraphcopyPolicy)
        assert world.caller.policy.name == "graphcopy"

    def test_lazy_world_runs_the_lazy_policy(self):
        world = make_world(FULLY_LAZY)
        assert isinstance(world.caller, SmartRpcRuntime)
        assert world.caller.policy.name == "lazy"
        assert world.caller.closure_size == 0
        assert world.caller.allocation_strategy == "isolated"

    def test_every_policy_name_builds_a_world(self):
        for name in POLICIES:
            world = make_world(name)
            assert isinstance(world.caller, SmartRpcRuntime)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_world("telepathy")

    def test_closure_size_propagates(self):
        world = make_world(PROPOSED, closure_size=1234)
        assert world.callee.closure_size == 1234

    def test_policy_instance_accepted(self):
        world = make_world(make_policy("paper", closure_size=512))
        assert world.caller.closure_size == 512
        assert world.method == "paper"

    def test_runtimes_get_independent_policy_copies(self):
        world = make_world("adaptive")
        assert world.caller.policy is not world.callee.policy

    def test_default_architecture_is_sparc(self):
        world = make_world(PROPOSED)
        assert world.caller.arch.name == "sparc32"
        assert world.callee.arch.name == "sparc32"


class TestResolvePolicy:
    def test_proposed_is_the_paper_policy(self):
        assert resolve_policy(PROPOSED).name == "paper"
        assert resolve_policy(PROPOSED).declared_budget == 8192

    def test_pinned_presets_ignore_the_closure_sweep_knob(self):
        assert resolve_policy(FULLY_LAZY, closure_size=4096).declared_budget == 0
        assert resolve_policy(FULLY_EAGER, closure_size=4096).name == "graphcopy"

    def test_hinted_gets_the_standard_workload_hints(self):
        policy = resolve_policy("hinted")
        assert policy.hints is not None

    def test_policy_instance_passes_through(self):
        policy = make_policy("adaptive")
        assert resolve_policy(policy) is policy


class TestRunTreeCall:
    @pytest.mark.parametrize("method", METHODS)
    def test_search_result_is_correct_for_every_method(self, method):
        world = make_world(method)
        run = run_tree_call(world, 63, "search", ratio=1.0)
        assert run.result == expected_search_checksum(63, 63)
        assert run.seconds > 0
        assert run.messages >= 2

    def test_ratio_zero_is_nearly_free_for_lazy(self):
        world = make_world(FULLY_LAZY)
        run = run_tree_call(world, 63, "search", ratio=0.0)
        assert run.callbacks == 0

    def test_search_repeat_runs(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "search_repeat", repeats=3)
        assert run.result == 3 * sum(range(63))

    def test_path_search_runs(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "path_search", repeats=4, seed=9)
        assert run.callbacks >= 1

    def test_unknown_procedure_rejected(self):
        world = make_world(PROPOSED)
        with pytest.raises(ValueError):
            run_tree_call(world, 63, "teleport", ratio=0.1)

    def test_stats_reset_before_measurement(self):
        world = make_world(PROPOSED)
        run_tree_call(world, 63, "search", ratio=1.0)
        # a second run on a fresh world is comparable
        world2 = make_world(PROPOSED)
        run2 = run_tree_call(world2, 63, "search", ratio=1.0)
        assert run2.messages > 0

    def test_row_shape(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "search", ratio=0.5)
        row = run.row()
        assert row[0] == PROPOSED
        assert len(row) == 5

    def test_ledger_populates_for_the_swizzle_path(self):
        world = make_world(PROPOSED)
        run = run_tree_call(world, 63, "search", ratio=1.0)
        ledger = run.ledger()
        assert ledger["closure_bytes_shipped"] > 0
        assert 0 < ledger["closure_bytes_touched"] <= (
            ledger["closure_bytes_shipped"]
        )

    def test_graphcopy_has_no_fill_ledger(self):
        world = make_world(FULLY_EAGER)
        run = run_tree_call(world, 63, "search", ratio=1.0)
        assert run.closure_shipped == 0
        assert run.prefetch_shipped == 0


class TestRunHashCall:
    def test_lookup_result_matches_across_policies(self):
        results = set()
        for method in (PROPOSED, FULLY_LAZY, "adaptive"):
            world = make_world(method)
            run = run_hash_call(world, 100, 4)
            results.add(run.result)
        assert len(results) == 1

    def test_lazy_hash_run_never_prefetches(self):
        world = make_world(FULLY_LAZY)
        run = run_hash_call(world, 100, 4)
        assert run.prefetch_shipped == 0


class TestEagerConstructorCompat:
    def test_fully_eager_class_is_the_pinned_runtime(self):
        world = make_world(FULLY_EAGER)
        eager = FullyEagerRpc(
            world.network,
            world.network.add_site("E"),
            world.caller.arch,
        )
        assert isinstance(eager, SmartRpcRuntime)
        assert eager.policy.name == "graphcopy"
