"""Shape tests: the reproduced experiments must show the paper's trends.

These run the real experiment code at reduced scale, then assert the
qualitative findings of the paper's evaluation — who wins, roughly by
how much, and where the regimes change.  Full-scale numbers are in
EXPERIMENTS.md and regenerate via ``python -m repro.bench all``.
"""

import pytest

from repro.bench.experiments import (
    ablation_alloc_strategy,
    ablation_batched_malloc,
    ablation_closure_order,
    fig4_methods_comparison,
    fig5_callback_counts,
    fig6_closure_size,
    fig7_update_performance,
    table1_allocation_table,
)

NODES = 4095
RATIOS = [0.0, 0.25, 0.5, 1.0]


@pytest.fixture(scope="module")
def fig4():
    return fig4_methods_comparison(num_nodes=NODES, ratios=RATIOS)


class TestFig4Shapes:
    def test_eager_is_flat(self, fig4):
        eager = [row[1] for row in fig4.rows]
        assert max(eager) < 1.25 * min(eager)

    def test_lazy_is_linear_and_worst_at_full_access(self, fig4):
        by_ratio = {row[0]: row for row in fig4.rows}
        lazy_full = by_ratio[1.0][2]
        assert lazy_full > by_ratio[1.0][1]  # worse than eager
        assert lazy_full > by_ratio[1.0][3]  # worse than proposed
        # linearity: half the access, about half the time
        assert by_ratio[0.5][2] == pytest.approx(lazy_full / 2, rel=0.2)

    def test_proposed_wins_at_low_ratio(self, fig4):
        by_ratio = {row[0]: row for row in fig4.rows}
        assert by_ratio[0.25][3] < by_ratio[0.25][1]
        assert by_ratio[0.25][3] < by_ratio[0.25][2]

    def test_proposed_scales_with_access_ratio(self, fig4):
        proposed = [row[3] for row in fig4.rows]
        assert proposed == sorted(proposed)

    def test_render_mentions_figure(self, fig4):
        assert "Figure 4" in fig4.render()


class TestFig5Shapes:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig5_callback_counts(num_nodes=NODES, ratios=RATIOS)

    def test_lazy_callbacks_equal_visited_nodes(self, fig5):
        for ratio, lazy, proposed in fig5.rows:
            assert lazy == int(round(ratio * NODES))

    def test_proposed_needs_far_fewer_callbacks(self, fig5):
        for ratio, lazy, proposed in fig5.rows:
            if ratio >= 0.5:
                assert proposed < lazy / 10


class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return fig6_closure_size(
            node_counts=[2047],
            closure_sizes=[0, 1024, 8192, 16384],
            repeats=2,
        )

    def test_zero_closure_is_much_slower_than_optimum(self, fig6):
        times = {row[1]: row[2] for row in fig6.rows}
        assert times[0] > 1.5 * min(times.values())

    def test_callbacks_fall_from_zero_closure(self, fig6):
        callbacks = {row[1]: row[3] for row in fig6.rows}
        assert callbacks[8192] < callbacks[0]


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def fig7(self):
        return fig7_update_performance(
            num_nodes=NODES, ratios=[0.25, 0.5, 1.0]
        )

    def test_update_roughly_twice_visit(self, fig7):
        for ratio, visit, update, quotient in fig7.rows:
            assert 1.4 <= quotient <= 2.6

    def test_update_time_scales_with_ratio(self, fig7):
        updates = [row[2] for row in fig7.rows]
        assert updates == sorted(updates)
        assert updates[-1] > 2 * updates[0]


class TestTable1:
    def test_two_rows_on_one_page(self):
        result = table1_allocation_table()
        assert len(result.rows) == 2
        pages = {row[0] for row in result.rows}
        assert len(pages) == 1  # both pointers share one protected page
        offsets = sorted(row[1] for row in result.rows)
        assert offsets[0] == 0 and offsets[1] > 0


class TestAblations:
    def test_alloc_strategy_rows_cover_strategies(self):
        result = ablation_alloc_strategy(num_nodes=1023, ratio=0.5)
        strategies = [row[0] for row in result.rows]
        assert strategies == ["single_home", "packed", "isolated"]
        by_strategy = {row[0]: row for row in result.rows}
        # isolated degrades toward lazy: markedly more callbacks (one
        # datum per page means every group fetch becomes per-datum)
        assert (
            by_strategy["isolated"][2]
            >= 1.5 * by_strategy["single_home"][2]
        )
        assert (
            by_strategy["isolated"][4]
            >= by_strategy["single_home"][4]
        )

    def test_closure_order_rows(self):
        result = ablation_closure_order(
            num_nodes=1023, ratios=(0.5,), closure_size=2048
        )
        assert len(result.rows) == 1
        ratio, bfs_s, dfs_s, bfs_cb, dfs_cb = result.rows[0]
        assert bfs_s > 0 and dfs_s > 0

    def test_batched_malloc_beats_immediate(self):
        result = ablation_batched_malloc(counts=(40,))
        count, batched_s, immediate_s, batched_msgs, immediate_msgs = (
            result.rows[0]
        )
        assert batched_s < immediate_s
        assert batched_msgs == 1
        assert immediate_msgs == 40
