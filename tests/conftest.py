"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.hashtable import register_hash_types
from repro.workloads.linked_list import register_list_types
from repro.workloads.trees import register_tree_types
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry


@pytest.fixture
def network() -> Network:
    """A fresh simulated network with default costs."""
    return Network()


class SmartPair:
    """Two smart runtimes (A holds data, B serves procedures) plus NS."""

    def __init__(self, network: Network, **runtime_kwargs) -> None:
        self.network = network
        self.name_server = TypeNameServer(
            network.add_site("NS"), TypeRegistry()
        )
        self.a = self._runtime("A", SPARC32, runtime_kwargs)
        self.b = self._runtime("B", X86_64, runtime_kwargs)

    def _runtime(self, site_id, arch, kwargs) -> SmartRpcRuntime:
        site = self.network.add_site(site_id)
        runtime = SmartRpcRuntime(
            self.network,
            site,
            arch,
            resolver=TypeResolver(site, "NS"),
            **kwargs,
        )
        register_tree_types(runtime)
        register_list_types(runtime)
        register_hash_types(runtime)
        return runtime

    def add_runtime(self, site_id: str, arch=SPARC32) -> SmartRpcRuntime:
        """Attach one more smart runtime to the same network."""
        site = self.network.add_site(site_id)
        runtime = SmartRpcRuntime(
            self.network, site, arch, resolver=TypeResolver(site, "NS")
        )
        register_tree_types(runtime)
        register_list_types(runtime)
        register_hash_types(runtime)
        return runtime


@pytest.fixture
def smart_pair(network: Network) -> SmartPair:
    """Two heterogeneous smart runtimes on one network."""
    return SmartPair(network)
