"""Tests for the XDR canonical stream."""

import pytest

from repro.xdr.errors import XdrError
from repro.xdr.stream import XdrDecoder, XdrEncoder


def round_trip(pack, unpack, value):
    encoder = XdrEncoder()
    pack(encoder, value)
    decoder = XdrDecoder(encoder.getvalue())
    result = unpack(decoder)
    decoder.expect_done()
    return result


class TestIntegers:
    @pytest.mark.parametrize("value", [0, 1, 2**32 - 1, 12345])
    def test_uint32_round_trip(self, value):
        assert round_trip(
            XdrEncoder.pack_uint32, XdrDecoder.unpack_uint32, value
        ) == value

    @pytest.mark.parametrize("value", [-(2**31), -1, 0, 2**31 - 1])
    def test_int32_round_trip(self, value):
        assert round_trip(
            XdrEncoder.pack_int32, XdrDecoder.unpack_int32, value
        ) == value

    @pytest.mark.parametrize("value", [0, 2**64 - 1])
    def test_uint64_round_trip(self, value):
        assert round_trip(
            XdrEncoder.pack_uint64, XdrDecoder.unpack_uint64, value
        ) == value

    @pytest.mark.parametrize("value", [-(2**63), 2**63 - 1])
    def test_int64_round_trip(self, value):
        assert round_trip(
            XdrEncoder.pack_int64, XdrDecoder.unpack_int64, value
        ) == value

    def test_uint32_out_of_range(self):
        encoder = XdrEncoder()
        with pytest.raises(XdrError):
            encoder.pack_uint32(2**32)
        with pytest.raises(XdrError):
            encoder.pack_uint32(-1)

    def test_int32_out_of_range(self):
        encoder = XdrEncoder()
        with pytest.raises(XdrError):
            encoder.pack_int32(2**31)

    def test_big_endian_on_wire(self):
        encoder = XdrEncoder()
        encoder.pack_uint32(1)
        assert encoder.getvalue() == b"\x00\x00\x00\x01"


class TestBool:
    def test_round_trip(self):
        for value in (True, False):
            assert round_trip(
                XdrEncoder.pack_bool, XdrDecoder.unpack_bool, value
            ) is value

    def test_bad_encoding_rejected(self):
        encoder = XdrEncoder()
        encoder.pack_uint32(7)
        with pytest.raises(XdrError):
            XdrDecoder(encoder.getvalue()).unpack_bool()


class TestFloats:
    def test_double_round_trip_exact(self):
        assert round_trip(
            XdrEncoder.pack_double, XdrDecoder.unpack_double, 3.14159
        ) == 3.14159

    def test_float_round_trip_approximate(self):
        out = round_trip(
            XdrEncoder.pack_float, XdrDecoder.unpack_float, 1.5
        )
        assert out == 1.5  # exactly representable


class TestOpaqueAndStrings:
    @pytest.mark.parametrize("data", [b"", b"a", b"abc", b"abcd", b"abcde"])
    def test_opaque_round_trip(self, data):
        assert round_trip(
            XdrEncoder.pack_opaque, XdrDecoder.unpack_opaque, data
        ) == data

    def test_opaque_padded_to_four(self):
        encoder = XdrEncoder()
        encoder.pack_opaque(b"ab")
        # 4 length + 2 data + 2 pad
        assert len(encoder.getvalue()) == 8

    def test_fixed_opaque_round_trip(self):
        encoder = XdrEncoder()
        encoder.pack_fixed_opaque(b"xyz")
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_fixed_opaque(3) == b"xyz"
        decoder.expect_done()

    def test_string_round_trip_utf8(self):
        assert round_trip(
            XdrEncoder.pack_string, XdrDecoder.unpack_string, "héllo✓"
        ) == "héllo✓"

    def test_nonzero_padding_rejected(self):
        data = b"\x00\x00\x00\x02ab\x00\x01"  # bad pad byte
        with pytest.raises(XdrError):
            XdrDecoder(data).unpack_opaque()


class TestFraming:
    def test_underflow_raises(self):
        with pytest.raises(XdrError):
            XdrDecoder(b"\x00\x00").unpack_uint32()

    def test_expect_done_on_trailing_bytes(self):
        encoder = XdrEncoder()
        encoder.pack_uint32(1)
        encoder.pack_uint32(2)
        decoder = XdrDecoder(encoder.getvalue())
        decoder.unpack_uint32()
        with pytest.raises(XdrError):
            decoder.expect_done()

    def test_remaining_and_done(self):
        encoder = XdrEncoder()
        encoder.pack_uint32(1)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.remaining == 4 and not decoder.done()
        decoder.unpack_uint32()
        assert decoder.remaining == 0 and decoder.done()

    def test_encoder_size_tracks_bytes(self):
        encoder = XdrEncoder()
        encoder.pack_uint64(1)
        encoder.pack_opaque(b"abc")
        assert encoder.size == len(encoder.getvalue()) == 8 + 4 + 4

    def test_mixed_sequence_round_trip(self):
        encoder = XdrEncoder()
        encoder.pack_string("id")
        encoder.pack_int32(-5)
        encoder.pack_bool(True)
        encoder.pack_double(2.5)
        encoder.pack_opaque(b"!!")
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_string() == "id"
        assert decoder.unpack_int32() == -5
        assert decoder.unpack_bool() is True
        assert decoder.unpack_double() == 2.5
        assert decoder.unpack_opaque() == b"!!"
        decoder.expect_done()
