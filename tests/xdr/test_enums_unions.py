"""Tests for XDR enums and discriminated unions."""

import pytest

from repro.memory.address_space import AddressSpace
from repro.rpc import marshal
from repro.rpc.errors import MarshalError
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.errors import XdrError
from repro.xdr.raw import RawCodec
from repro.xdr.registry import spec_from_bytes, spec_to_bytes
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    EnumType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    UnionType,
    float64,
    int32,
)

COLOR = EnumType("color", {"RED": 0, "GREEN": 1, "BLUE": 2})
SHAPE = UnionType(
    "shape",
    COLOR,
    {"RED": int32, "GREEN": float64, "BLUE": OpaqueType(4)},
)


class TestEnumType:
    def test_members(self):
        assert COLOR.value_of("GREEN") == 1
        assert COLOR.name_of(2) == "BLUE"
        assert COLOR.is_valid(0) and not COLOR.is_valid(7)

    def test_unknown_member_rejected(self):
        with pytest.raises(XdrError):
            COLOR.value_of("MAUVE")
        with pytest.raises(XdrError):
            COLOR.name_of(9)

    def test_layout(self):
        assert COLOR.sizeof(SPARC32) == 4
        assert COLOR.alignment(X86_64) == 4
        assert COLOR.canonical_size() == 4

    def test_empty_enum_rejected(self):
        with pytest.raises(XdrError):
            EnumType("e", {})

    def test_duplicate_values_rejected(self):
        with pytest.raises(XdrError):
            EnumType("e", {"A": 1, "B": 1})

    def test_equality(self):
        assert COLOR == EnumType("color", {"RED": 0, "GREEN": 1,
                                           "BLUE": 2})
        assert COLOR != EnumType("color", {"RED": 0})


class TestUnionType:
    def test_layout_holds_largest_arm(self):
        # 4-byte discriminant padded to 8, + 8-byte double = 16.
        assert SHAPE.sizeof(SPARC32) == 16
        assert SHAPE.alignment(SPARC32) == 8

    def test_arm_lookup(self):
        assert SHAPE.arm_for(1) is float64

    def test_missing_arm_rejected(self):
        with pytest.raises(XdrError):
            UnionType("u", COLOR, {"RED": int32})

    def test_arm_for_nonmember_rejected(self):
        with pytest.raises(XdrError):
            UnionType("u", COLOR, {"RED": int32, "GREEN": int32,
                                   "BLUE": int32, "MAUVE": int32})

    def test_pointer_arm_rejected(self):
        with pytest.raises(XdrError):
            UnionType("u", COLOR, {
                "RED": PointerType("t"),
                "GREEN": int32,
                "BLUE": int32,
            })

    def test_pointer_in_nested_arm_rejected(self):
        nested = StructType("n", [Field("p", PointerType("t"))])
        with pytest.raises(XdrError):
            UnionType("u", COLOR, {
                "RED": nested, "GREEN": int32, "BLUE": int32,
            })

    def test_no_pointer_fields_reported(self):
        assert list(SHAPE.pointer_fields(SPARC32)) == []


class TestWireForm:
    def test_enum_spec_round_trip(self):
        assert spec_from_bytes(spec_to_bytes(COLOR)) == COLOR

    def test_union_spec_round_trip(self):
        assert spec_from_bytes(spec_to_bytes(SHAPE)) == SHAPE

    def test_struct_with_enum_round_trip(self):
        spec = StructType("painted", [
            Field("c", COLOR), Field("v", int32),
        ])
        assert spec_from_bytes(spec_to_bytes(spec)) == spec


class TestRawCodec:
    @pytest.mark.parametrize("src,dst", [(SPARC32, X86_64),
                                         (X86_64, SPARC32)])
    def test_union_converts_across_architectures(self, src, dst):
        src_space, dst_space = AddressSpace("s"), AddressSpace("d")
        src_codec = RawCodec(src_space, src)
        dst_codec = RawCodec(dst_space, dst)
        src_address = src_space.map_region(1)
        dst_address = dst_space.map_region(1)
        # write GREEN + 2.5 into source memory
        src_space.write_raw(
            src_address, (1).to_bytes(4, src.byteorder, signed=True)
        )
        src_space.write_raw(
            src_address + SHAPE.body_offset(src),
            float64.pack_raw(2.5, src),
        )
        encoder = XdrEncoder()
        src_codec.encode(src_address, SHAPE, encoder,
                         lambda p, t: None)
        decoder = XdrDecoder(encoder.getvalue())
        dst_codec.decode(decoder, dst_address, SHAPE, lambda t: 0)
        decoder.expect_done()
        raw = dst_space.read_raw(dst_address, 4)
        assert int.from_bytes(raw, dst.byteorder, signed=True) == 1
        body = dst_space.read_raw(
            dst_address + SHAPE.body_offset(dst), 8
        )
        assert float64.unpack_raw(body, dst) == 2.5

    def test_invalid_discriminant_rejected_on_encode(self):
        space = AddressSpace("s")
        codec = RawCodec(space, SPARC32)
        address = space.map_region(1)
        space.write_raw(address, (9).to_bytes(4, "big"))
        with pytest.raises(XdrError):
            codec.encode(address, SHAPE, XdrEncoder(),
                         lambda p, t: None)

    def test_invalid_enum_value_rejected_on_decode(self):
        space = AddressSpace("s")
        codec = RawCodec(space, SPARC32)
        address = space.map_region(1)
        encoder = XdrEncoder()
        encoder.pack_int32(9)
        with pytest.raises(XdrError):
            codec.decode(XdrDecoder(encoder.getvalue()), address,
                         COLOR, lambda t: 0)


class TestMarshalling:
    def test_enum_by_name_and_value(self):
        for given in ("GREEN", 1):
            encoder = XdrEncoder()
            marshal.pack_value(encoder, COLOR, given)
            assert marshal.unpack_value(
                XdrDecoder(encoder.getvalue()), COLOR
            ) == "GREEN"

    def test_enum_invalid_value_rejected(self):
        with pytest.raises(MarshalError):
            marshal.pack_value(XdrEncoder(), COLOR, 9)
        with pytest.raises(MarshalError):
            marshal.pack_value(XdrEncoder(), COLOR, True)

    def test_union_round_trip(self):
        encoder = XdrEncoder()
        marshal.pack_value(
            encoder, SHAPE, {"arm": "GREEN", "value": 0.5}
        )
        out = marshal.unpack_value(XdrDecoder(encoder.getvalue()), SHAPE)
        assert out == {"arm": "GREEN", "value": 0.5}

    def test_union_wrong_shape_rejected(self):
        with pytest.raises(MarshalError):
            marshal.pack_value(XdrEncoder(), SHAPE, {"value": 1})

    def test_union_as_rpc_argument(self, smart_pair):
        from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
        from repro.rpc.stubgen import ClientStub, bind_server

        interface = InterfaceDef("shapes", [
            ProcedureDef(
                "describe", [Param("s", SHAPE)], returns=COLOR
            ),
        ])

        def describe(ctx, shape):
            return shape["arm"]

        bind_server(smart_pair.b, interface, {"describe": describe})
        stub = ClientStub(smart_pair.a, interface, "B")
        with smart_pair.a.session() as session:
            assert stub.describe(
                session, {"arm": "BLUE", "value": b"wxyz"}
            ) == "BLUE"


class TestStructView:
    def test_enum_field_access(self, smart_pair):
        runtime = smart_pair.a
        painted = StructType("painted", [
            Field("c", COLOR), Field("v", int32),
        ])
        runtime.resolver.register("painted", painted)
        address = runtime.malloc("painted")
        view = runtime.struct_view(address, painted)
        view.set("c", "BLUE")
        assert view.get("c") == 2
        view.set("c", 0)
        assert view.get("c") == 0

    def test_enum_field_rejects_nonmember(self, smart_pair):
        runtime = smart_pair.a
        painted = StructType("painted2", [Field("c", COLOR)])
        runtime.resolver.register("painted2", painted)
        address = runtime.malloc("painted2")
        view = runtime.struct_view(address, painted)
        with pytest.raises(XdrError):
            view.set("c", 9)


class TestIdlEnums:
    def test_enum_declaration(self):
        from repro.rpc.idl import parse_idl

        document = parse_idl("""
        enum color { RED = 0, GREEN = 1, BLUE = 2 };
        struct painted { color c; int32 v; };
        """)
        assert document.enum("color").value_of("BLUE") == 2
        assert document.struct("painted").field("c").spec == COLOR

    def test_enum_as_parameter_type(self):
        from repro.rpc.idl import parse_idl

        document = parse_idl("""
        enum mode { FAST = 1, SAFE = 2 };
        interface svc { int32 run(mode m); };
        """)
        procedure = document.interface("svc").procedure("run")
        assert isinstance(procedure.params[0].spec, EnumType)

    def test_duplicate_member_rejected(self):
        from repro.rpc.idl import IdlError, parse_idl

        with pytest.raises(IdlError):
            parse_idl("enum e { A = 0, A = 1 };")

    def test_negative_values_allowed(self):
        from repro.rpc.idl import parse_idl

        document = parse_idl("enum sign { NEG = -1, POS = 1 };")
        assert document.enum("sign").value_of("NEG") == -1
