"""Tests for typed struct views (program-plane access)."""

import pytest

from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.errors import XdrError
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    float64,
    int32,
)
from repro.xdr.view import StructView

SPEC = StructType("thing", [
    Field("count", int32),
    Field("ratio", float64),
    Field("label", OpaqueType(4)),
    Field("next", PointerType("thing")),
    Field("slots", ArrayType(int32, 3)),
])


@pytest.fixture(params=[SPARC32, X86_64], ids=["sparc32", "x86_64"])
def view(request):
    space = AddressSpace("T")
    mem = Mem(space)
    address = space.map_region(1)
    return StructView(mem, address, SPEC, request.param)


class TestFieldAccess:
    def test_scalar_round_trip(self, view):
        view.set("count", -7)
        assert view.get("count") == -7

    def test_float_round_trip(self, view):
        view.set("ratio", 0.125)
        assert view.get("ratio") == 0.125

    def test_opaque_round_trip(self, view):
        view.set("label", b"abcd")
        assert view.get("label") == b"abcd"

    def test_pointer_round_trip(self, view):
        view.set("next", 0xCAFE)
        assert view.get("next") == 0xCAFE

    def test_null_pointer(self, view):
        view.set("next", 0)
        assert view.get("next") == 0

    def test_unknown_field_raises(self, view):
        with pytest.raises(XdrError):
            view.get("missing")

    def test_field_address_respects_layout(self, view):
        layout = SPEC.layout(view.arch)
        assert (
            view.field_address("ratio")
            == view.address + layout.offsets["ratio"]
        )


class TestTypeChecks:
    def test_scalar_given_bytes_rejected(self, view):
        with pytest.raises(XdrError):
            view.set("count", b"xx")

    def test_pointer_given_nonint_rejected(self, view):
        with pytest.raises(XdrError):
            view.set("next", "addr")

    def test_opaque_wrong_length_rejected(self, view):
        with pytest.raises(XdrError):
            view.set("label", b"toolong!")

    def test_aggregate_get_rejected(self, view):
        with pytest.raises(XdrError):
            view.get("slots")


class TestArrayElements:
    def test_element_access(self, view):
        layout = SPEC.layout(view.arch)
        stride = SPEC.field("slots").spec.stride(view.arch)
        for index, value in enumerate((10, 20, 30)):
            view.mem.store(
                view.address + layout.offsets["slots"] + index * stride,
                int32.pack_raw(value, view.arch),
            )
        assert [view.element("slots", i) for i in range(3)] == [10, 20, 30]

    def test_element_bounds_checked(self, view):
        with pytest.raises(XdrError):
            view.element("slots", 3)
        with pytest.raises(XdrError):
            view.element("slots", -1)

    def test_element_of_non_array_rejected(self, view):
        with pytest.raises(XdrError):
            view.element("count", 0)


class TestPointerChasing:
    def test_view_follows_pointer(self, view):
        other_address = view.mem.space.map_region(1)
        view.set("next", other_address)
        other = view.view("next", SPEC)
        other.set("count", 42)
        assert other.address == other_address
        assert other.get("count") == 42

    def test_view_of_null_rejected(self, view):
        view.set("next", 0)
        with pytest.raises(XdrError):
            view.view("next", SPEC)


class TestGetRun:
    """Bulk access runs must decode exactly what per-field gets do."""

    def _fill(self, view):
        view.set("count", -7)
        view.set("ratio", 0.125)
        view.set("label", b"abcd")
        view.set("next", 0xCAFE)
        for index, value in enumerate((10, 20, 30)):
            base = view.field_address("slots")
            stride = SPEC.field("slots").spec.stride(view.arch)
            view.mem.store(
                base + index * stride,
                value.to_bytes(4, view.arch.byteorder, signed=True),
            )

    def test_run_matches_per_field_gets(self, view):
        self._fill(view)
        run = view.get_run("count", "ratio", "label", "next")
        assert run == (
            view.get("count"),
            view.get("ratio"),
            view.get("label"),
            view.get("next"),
        )

    def test_run_spanning_padding_gap(self, view):
        # count sits at offset 0; ratio is 8-aligned, so the run
        # crosses the alignment gap between them.
        self._fill(view)
        assert view.get_run("count", "ratio") == (-7, 0.125)

    def test_run_returns_argument_order(self, view):
        self._fill(view)
        assert view.get_run("next", "count") == (0xCAFE, -7)

    def test_run_flattens_array_members(self, view):
        self._fill(view)
        assert view.get_run("slots") == (10, 20, 30)
        assert view.get_run("count", "slots") == (-7, 10, 20, 30)

    def test_run_with_enum_member(self):
        from repro.xdr.types import EnumType

        spec = StructType("flagged", [
            Field("state", EnumType("state", {"OFF": 0, "ON": 1})),
            Field("value", int32),
        ])
        space = AddressSpace("E")
        mem = Mem(space)
        address = space.map_region(1)
        view = StructView(mem, address, spec, SPARC32)
        view.set("state", "ON")
        view.set("value", 5)
        assert view.get_run("state", "value") == (1, 5)

    def test_duplicate_member_rejected(self, view):
        with pytest.raises(XdrError):
            view.get_run("count", "count")

    def test_empty_run_rejected(self, view):
        with pytest.raises(XdrError):
            view.get_run()

    def test_plans_memoised_per_arch_and_names(self, view):
        from repro.xdr.view import compile_run_plan

        first = compile_run_plan(SPEC, view.arch, ("count", "ratio"))
        again = compile_run_plan(SPEC, view.arch, ("count", "ratio"))
        assert first is again
