"""Tests for the type system and per-architecture layout."""

import pytest

from repro.xdr.arch import ALPHA64, SPARC32, X86_64, Architecture
from repro.xdr.errors import XdrError
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    float64,
    int8,
    int16,
    int32,
    int64,
    uint32,
)


class TestArchitecture:
    def test_bad_byteorder_rejected(self):
        with pytest.raises(ValueError):
            Architecture("x", "middle", 4)

    def test_bad_pointer_size_rejected(self):
        with pytest.raises(ValueError):
            Architecture("x", "big", 2)

    def test_align_clamped_to_max(self):
        arch = Architecture("x", "big", 4, max_alignment=4)
        assert arch.align_of(8) == 4
        assert arch.align_of(2) == 2

    def test_known_architectures(self):
        assert SPARC32.pointer_size == 4 and SPARC32.byteorder == "big"
        assert X86_64.pointer_size == 8 and X86_64.byteorder == "little"
        assert ALPHA64.pointer_size == 8


class TestScalars:
    @pytest.mark.parametrize("spec,size", [
        (int8, 1), (int16, 2), (int32, 4), (int64, 8), (float64, 8),
    ])
    def test_sizes(self, spec, size):
        assert spec.sizeof(SPARC32) == size
        assert spec.sizeof(X86_64) == size

    def test_pack_unpack_native(self):
        raw = int32.pack_raw(-42, SPARC32)
        assert raw == (-42).to_bytes(4, "big", signed=True)
        assert int32.unpack_raw(raw, SPARC32) == -42

    def test_endianness_differs(self):
        big = uint32.pack_raw(1, SPARC32)
        little = uint32.pack_raw(1, X86_64)
        assert big == little[::-1]

    def test_pack_out_of_range(self):
        with pytest.raises(XdrError):
            int8.pack_raw(1000, SPARC32)

    def test_canonical_size_minimum_four(self):
        assert int8.canonical_size() == 4
        assert int64.canonical_size() == 8

    def test_no_pointer_fields(self):
        assert list(int32.pointer_fields(SPARC32)) == []
        assert not int32.has_pointers(SPARC32)


class TestOpaque:
    def test_size_and_alignment(self):
        spec = OpaqueType(10)
        assert spec.sizeof(SPARC32) == 10
        assert spec.alignment(SPARC32) == 1

    def test_canonical_padded(self):
        assert OpaqueType(5).canonical_size() == 8

    def test_zero_length_rejected(self):
        with pytest.raises(XdrError):
            OpaqueType(0)


class TestPointer:
    def test_size_follows_architecture(self):
        spec = PointerType("t")
        assert spec.sizeof(SPARC32) == 4
        assert spec.sizeof(X86_64) == 8

    def test_reports_itself_as_pointer_field(self):
        spec = PointerType("t")
        assert list(spec.pointer_fields(SPARC32)) == [(0, spec)]


class TestArray:
    def test_stride_and_size(self):
        spec = ArrayType(int32, 5)
        assert spec.stride(SPARC32) == 4
        assert spec.sizeof(SPARC32) == 20

    def test_pointer_fields_per_element(self):
        spec = ArrayType(PointerType("t"), 3)
        offsets = [offset for offset, _ in spec.pointer_fields(X86_64)]
        assert offsets == [0, 8, 16]

    def test_bad_count_rejected(self):
        with pytest.raises(XdrError):
            ArrayType(int32, 0)

    def test_canonical_size(self):
        assert ArrayType(int16, 4).canonical_size() == 16


class TestStruct:
    def test_tree_node_is_16_bytes_on_sparc(self):
        node = StructType("n", [
            Field("left", PointerType("n")),
            Field("right", PointerType("n")),
            Field("data", OpaqueType(8)),
        ])
        assert node.sizeof(SPARC32) == 16  # the paper's node size
        assert node.sizeof(X86_64) == 24

    def test_natural_padding(self):
        spec = StructType("s", [
            Field("a", int8),
            Field("b", int32),
            Field("c", int8),
        ])
        layout = spec.layout(SPARC32)
        assert layout.offsets == {"a": 0, "b": 4, "c": 8}
        assert layout.size == 12  # tail-padded to alignment 4

    def test_layout_differs_across_architectures(self):
        spec = StructType("s", [
            Field("p", PointerType("s")),
            Field("v", int32),
        ])
        assert spec.layout(SPARC32).size == 8
        assert spec.layout(X86_64).size == 16

    def test_layout_memoised(self):
        spec = StructType("s", [Field("v", int32)])
        assert spec.layout(SPARC32) is spec.layout(SPARC32)

    def test_pointer_fields_with_offsets(self):
        spec = StructType("s", [
            Field("v", int64),
            Field("p", PointerType("s")),
            Field("q", PointerType("s")),
        ])
        offsets = [offset for offset, _ in spec.pointer_fields(SPARC32)]
        assert offsets == [8, 12]

    def test_nested_struct_pointer_fields(self):
        inner = StructType("inner", [Field("p", PointerType("x"))])
        outer = StructType("outer", [
            Field("v", int32),
            Field("i", inner),
        ])
        offsets = [offset for offset, _ in outer.pointer_fields(SPARC32)]
        assert offsets == [4]

    def test_field_lookup(self):
        spec = StructType("s", [Field("v", int32)])
        assert spec.field("v").spec is int32
        with pytest.raises(XdrError):
            spec.field("missing")

    def test_duplicate_field_rejected(self):
        with pytest.raises(XdrError):
            StructType("s", [Field("v", int32), Field("v", int32)])

    def test_empty_struct_rejected(self):
        with pytest.raises(XdrError):
            StructType("s", [])

    def test_equality_by_name_and_fields(self):
        first = StructType("s", [Field("v", int32)])
        second = StructType("s", [Field("v", int32)])
        third = StructType("s", [Field("v", int64)])
        assert first == second
        assert first != third
        assert hash(first) == hash(second)
