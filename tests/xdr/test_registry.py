"""Tests for the type registry and self-describing spec encoding."""

import pytest

from repro.xdr.errors import XdrError
from repro.xdr.registry import (
    TypeRegistry,
    shared_registry,
    spec_from_bytes,
    spec_to_bytes,
)
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
    int32,
    uint64,
)


class TestRegistry:
    def test_register_and_resolve(self):
        registry = TypeRegistry()
        registry.register("i", int32)
        assert registry.resolve("i") is int32

    def test_unknown_id_raises(self):
        with pytest.raises(XdrError):
            TypeRegistry().resolve("nope")

    def test_reregister_same_definition_idempotent(self):
        registry = TypeRegistry()
        spec = StructType("s", [Field("v", int32)])
        registry.register("s", spec)
        registry.register("s", StructType("s", [Field("v", int32)]))

    def test_rebind_different_definition_rejected(self):
        registry = TypeRegistry()
        registry.register("s", int32)
        with pytest.raises(XdrError):
            registry.register("s", uint64)

    def test_knows_and_type_ids(self):
        registry = TypeRegistry()
        registry.register("b", int32)
        registry.register("a", uint64)
        assert registry.knows("a") and not registry.knows("c")
        assert registry.type_ids == ["a", "b"]

    def test_shared_registry_merges(self):
        first, second = TypeRegistry(), TypeRegistry()
        first.register("a", int32)
        second.register("b", uint64)
        merged = shared_registry(first, second)
        assert merged.knows("a") and merged.knows("b")


class TestSpecWireForm:
    @pytest.mark.parametrize("spec", [
        int32,
        uint64,
        ScalarType(ScalarKind.FLOAT32),
        OpaqueType(12),
        PointerType("target"),
        ArrayType(int32, 7),
        ArrayType(PointerType("t"), 2),
        StructType("node", [
            Field("next", PointerType("node")),
            Field("key", uint64),
            Field("value", OpaqueType(16)),
        ]),
        StructType("outer", [
            Field("inner", StructType("inner", [Field("v", int32)])),
            Field("items", ArrayType(OpaqueType(4), 3)),
        ]),
    ])
    def test_round_trip(self, spec):
        assert spec_from_bytes(spec_to_bytes(spec)) == spec

    def test_unknown_tag_rejected(self):
        from repro.xdr.stream import XdrEncoder

        encoder = XdrEncoder()
        encoder.pack_uint32(99)
        with pytest.raises(XdrError):
            spec_from_bytes(encoder.getvalue())

    def test_unknown_scalar_kind_rejected(self):
        from repro.xdr.stream import XdrEncoder

        encoder = XdrEncoder()
        encoder.pack_uint32(0)  # scalar tag
        encoder.pack_string("NOT_A_KIND")
        with pytest.raises(XdrError):
            spec_from_bytes(encoder.getvalue())

    def test_trailing_bytes_rejected(self):
        data = spec_to_bytes(int32) + b"\x00\x00\x00\x00"
        with pytest.raises(XdrError):
            spec_from_bytes(data)
