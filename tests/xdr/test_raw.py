"""Tests for raw-memory <-> canonical conversion."""

import pytest

from repro.memory.address_space import AddressSpace
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.errors import XdrError
from repro.xdr.raw import RawCodec
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    float64,
    int16,
    int32,
    int64,
    uint8,
)

RECORD = StructType("record", [
    Field("flag", uint8),
    Field("count", int32),
    Field("total", int64),
    Field("ratio", float64),
    Field("tag", OpaqueType(6)),
    Field("values", ArrayType(int16, 3)),
])


def refuse_out(pointer, type_id):
    raise AssertionError("no pointers expected")


def refuse_in(type_id):
    raise AssertionError("no pointers expected")


def write_record(codec, address, arch):
    layout = RECORD.layout(arch)
    space = codec.space
    space.write_raw(address + layout.offsets["flag"],
                    uint8.pack_raw(7, arch))
    space.write_raw(address + layout.offsets["count"],
                    int32.pack_raw(-100, arch))
    space.write_raw(address + layout.offsets["total"],
                    int64.pack_raw(2**40, arch))
    space.write_raw(address + layout.offsets["ratio"],
                    float64.pack_raw(0.5, arch))
    space.write_raw(address + layout.offsets["tag"], b"abcdef")
    stride = RECORD.field("values").spec.stride(arch)
    for index, value in enumerate((1, -2, 3)):
        space.write_raw(
            address + layout.offsets["values"] + index * stride,
            int16.pack_raw(value, arch),
        )


def read_record(codec, address, arch):
    layout = RECORD.layout(arch)
    space = codec.space
    out = {
        "flag": uint8.unpack_raw(
            space.read_raw(address + layout.offsets["flag"], 1), arch
        ),
        "count": int32.unpack_raw(
            space.read_raw(address + layout.offsets["count"], 4), arch
        ),
        "total": int64.unpack_raw(
            space.read_raw(address + layout.offsets["total"], 8), arch
        ),
        "ratio": float64.unpack_raw(
            space.read_raw(address + layout.offsets["ratio"], 8), arch
        ),
        "tag": space.read_raw(address + layout.offsets["tag"], 6),
    }
    stride = RECORD.field("values").spec.stride(arch)
    out["values"] = [
        int16.unpack_raw(
            space.read_raw(
                address + layout.offsets["values"] + index * stride, 2
            ),
            arch,
        )
        for index in range(3)
    ]
    return out


class TestCrossArchitectureConversion:
    @pytest.mark.parametrize("src_arch,dst_arch", [
        (SPARC32, X86_64),
        (X86_64, SPARC32),
        (SPARC32, SPARC32),
    ])
    def test_record_survives_conversion(self, src_arch, dst_arch):
        src_space = AddressSpace("src")
        dst_space = AddressSpace("dst")
        src = RawCodec(src_space, src_arch)
        dst = RawCodec(dst_space, dst_arch)
        src_address = src_space.map_region(1)
        dst_address = dst_space.map_region(1)
        write_record(src, src_address, src_arch)

        encoder = XdrEncoder()
        src.encode(src_address, RECORD, encoder, refuse_out)
        decoder = XdrDecoder(encoder.getvalue())
        dst.decode(decoder, dst_address, RECORD, refuse_in)
        decoder.expect_done()

        assert read_record(dst, dst_address, dst_arch) == {
            "flag": 7,
            "count": -100,
            "total": 2**40,
            "ratio": 0.5,
            "tag": b"abcdef",
            "values": [1, -2, 3],
        }

    def test_canonical_form_is_architecture_independent(self):
        encodings = []
        for arch in (SPARC32, X86_64):
            space = AddressSpace("s")
            codec = RawCodec(space, arch)
            address = space.map_region(1)
            write_record(codec, address, arch)
            encoder = XdrEncoder()
            codec.encode(address, RECORD, encoder, refuse_out)
            encodings.append(encoder.getvalue())
        assert encodings[0] == encodings[1]


class TestPointerHooks:
    SPEC = StructType("cell", [
        Field("next", PointerType("cell")),
        Field("value", int32),
    ])

    def test_encode_calls_pointer_out_with_value(self):
        space = AddressSpace("s")
        codec = RawCodec(space, SPARC32)
        address = space.map_region(1)
        codec.write_pointer(address, 0x1234)
        seen = []

        def out(pointer, type_id):
            seen.append((pointer, type_id))

        codec.encode(address, self.SPEC, XdrEncoder(), out)
        assert seen == [(0x1234, "cell")]

    def test_decode_stores_pointer_in_result(self):
        space = AddressSpace("s")
        codec = RawCodec(space, X86_64)
        address = space.map_region(1)
        encoder = XdrEncoder()
        encoder.pack_int32(9)  # the value field; pointer comes via hook

        def into(type_id):
            assert type_id == "cell"
            return 0xBEEF

        codec.decode(XdrDecoder(encoder.getvalue()), address, self.SPEC,
                     into)
        assert codec.read_pointer(address) == 0xBEEF

    def test_write_pointer_range_checked(self):
        space = AddressSpace("s")
        codec = RawCodec(space, SPARC32)
        address = space.map_region(1)
        with pytest.raises(XdrError):
            codec.write_pointer(address, 2**32)  # too wide for 4 bytes

    def test_pointer_word_endianness(self):
        space = AddressSpace("s")
        big = RawCodec(space, SPARC32)
        address = space.map_region(1)
        big.write_pointer(address, 0x01020304)
        assert space.read_raw(address, 4) == b"\x01\x02\x03\x04"
