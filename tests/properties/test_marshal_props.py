"""Property-based round trips for RPC value marshalling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc import marshal
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    EnumType,
    Field,
    OpaqueType,
    StructType,
    UnionType,
    float64,
    int32,
    int64,
)

COLOR = EnumType("color", {"RED": 0, "GREEN": 1, "BLUE": 2})
SHAPE = UnionType(
    "shape",
    COLOR,
    {"RED": int32, "GREEN": float64, "BLUE": OpaqueType(4)},
)
RECORD = StructType("record", [
    Field("a", int32),
    Field("c", COLOR),
    Field("u", SHAPE),
    Field("xs", ArrayType(int64, 2)),
])


def round_trip(spec, value):
    encoder = XdrEncoder()
    marshal.pack_value(encoder, spec, value)
    decoder = XdrDecoder(encoder.getvalue())
    result = marshal.unpack_value(decoder, spec)
    decoder.expect_done()
    return result


union_values = st.one_of(
    st.tuples(
        st.just("RED"),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    ),
    st.tuples(
        st.just("GREEN"),
        st.floats(allow_nan=False, allow_infinity=False),
    ),
    st.tuples(st.just("BLUE"), st.binary(min_size=4, max_size=4)),
).map(lambda pair: {"arm": pair[0], "value": pair[1]})


class TestMarshalRoundTrips:
    @settings(max_examples=60)
    @given(st.sampled_from(sorted(COLOR.members)))
    def test_enum(self, member):
        assert round_trip(COLOR, member) == member

    @settings(max_examples=60)
    @given(union_values)
    def test_union(self, value):
        assert round_trip(SHAPE, value) == value

    @settings(max_examples=60)
    @given(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.sampled_from(sorted(COLOR.members)),
        union_values,
        st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            min_size=2,
            max_size=2,
        ),
    )
    def test_struct_with_enum_and_union(self, a, color, union, xs):
        value = {"a": a, "c": color, "u": union, "xs": xs}
        assert round_trip(RECORD, value) == value
