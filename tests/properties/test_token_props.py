"""Properties of the page-access-token fast path.

Two obligations:

* **Freshness.** A cached token must never let the program observe
  pre-invalidation protection or post-invalidation bytes: any
  interleaving of checked reads/writes, bulk runs, raw-plane writes,
  ``protect`` flips and ``unmap_page`` calls must behave exactly like
  a shadow model that re-checks everything on every access.
* **Coherency silence.** Sessions that interleave bulk-read calls
  (``total``, one access run per node) with writing calls (``scale``)
  must stay free of coherency-sanitizer diagnostics and return the
  same values the checked path returns — the token path cannot hide
  an invalidation from the protocol.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.sanitizer import check_events
from repro.bench.harness import CALLEE, SIMNET, make_world
from repro.memory.accessor import Mem
from repro.memory.address_space import AddressSpace
from repro.memory.faults import AccessViolation
from repro.memory.page import Protection
from repro.workloads.linked_list import build_list, list_client

NUM_PAGES = 3

#: One interleaved step: (op, page index, offset, size-ish payload).
ops = st.sampled_from(["load", "load_run", "store", "raw_write",
                       "protect_ro", "protect_rw", "unmap", "remap"])
steps = st.lists(
    st.tuples(
        ops,
        st.integers(min_value=0, max_value=NUM_PAGES - 1),
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=16),
    ),
    max_size=40,
)


class Shadow:
    """A re-check-everything model of the same address space."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self.pages = {}  # number -> (bytearray, Protection)

    def read(self, number: int, offset: int, size: int):
        entry = self.pages.get(number)
        if entry is None or not entry[1].allows_read():
            return None  # access must not succeed
        return bytes(entry[0][offset:offset + size])

    def write(self, number: int, offset: int, data: bytes) -> bool:
        entry = self.pages.get(number)
        if entry is None or not entry[1].allows_write():
            return False
        entry[0][offset:offset + len(data)] = data
        return True


@settings(max_examples=60, deadline=None)
@given(steps, st.randoms(use_true_random=False))
def test_tokens_always_match_a_recheck_model(trace, rng):
    space = AddressSpace("P")
    mem = Mem(space)
    shadow = Shadow(space.page_size)
    base = space.map_region(NUM_PAGES)
    first = space.page_number(base)
    numbers = list(range(first, first + NUM_PAGES))
    for number in numbers:
        shadow.pages[number] = (
            bytearray(space.page_size), Protection.READ_WRITE
        )
    for op, index, offset, size in trace:
        number = numbers[index]
        address = number * space.page_size + offset
        mapped = shadow.pages.get(number)
        if op in ("load", "load_run"):
            expected = shadow.read(number, offset, size)
            if expected is None:
                with pytest.raises(Exception):
                    mem.load(address, size)
            elif op == "load":
                assert mem.load(address, size) == expected
            else:
                assert mem.load_run(address, size, accesses=size) == expected
        elif op == "store":
            payload = bytes(rng.randrange(256) for _ in range(size))
            if shadow.write(number, offset, payload):
                mem.store(address, payload)
            else:
                with pytest.raises(Exception):
                    mem.store(address, payload)
        elif op == "raw_write":
            # The raw plane ignores protection but needs the mapping.
            if mapped is not None:
                payload = bytes(rng.randrange(256) for _ in range(size))
                space.write_raw(address, payload)
                mapped[0][offset:offset + size] = payload
        elif op == "protect_ro" and mapped is not None:
            space.protect(number, Protection.READ)
            shadow.pages[number] = (mapped[0], Protection.READ)
        elif op == "protect_rw" and mapped is not None:
            space.protect(number, Protection.READ_WRITE)
            shadow.pages[number] = (mapped[0], Protection.READ_WRITE)
        elif op == "unmap" and mapped is not None:
            space.unmap_page(number)
            del shadow.pages[number]
        elif op == "remap" and mapped is None:
            # Spaces never re-map a vacated number; a fresh region
            # takes over the slot (still bumps the generation, which
            # is the invalidation being exercised).
            fresh = space.map_region(1)
            numbers[index] = space.page_number(fresh)
            shadow.pages[numbers[index]] = (
                bytearray(space.page_size), Protection.READ_WRITE
            )


def sanitize(events):
    collector = DiagnosticCollector()
    check_events(events, collector)
    return sorted(d.code for d in collector)


class TestBulkReadersStayCoherent:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=1, max_value=48),
        st.lists(st.sampled_from(["total", "scale"]),
                 min_size=2, max_size=5),
        st.sampled_from(["proposed", "lazy", "adaptive"]),
    )
    def test_interleaved_bulk_reads_and_writes(
        self, nodes, calls, method
    ):
        values = list(range(nodes))
        with make_world(method, transport=SIMNET, trace=True) as world:
            head = build_list(world.caller, values)
            stub = list_client(world.caller, CALLEE)
            factor = 1
            with world.caller.session() as session:
                for call in calls:
                    if call == "total":
                        got = stub.total(session, head)
                        assert got == factor * sum(values)
                    else:
                        assert stub.scale(session, head, 2) == nodes
                        factor *= 2
            events = list(world.stats.events)
        assert events, "tracing was enabled but recorded nothing"
        assert sanitize(events) == []
