"""Property-based tests for heap and allocation-table invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address_space import AddressSpace
from repro.memory.heap import Heap
from repro.smartrpc.alloc_table import AllocEntry, DataAllocationTable
from repro.smartrpc.long_pointer import LongPointer

# A step is (op, size) where op True = malloc, False = free-oldest.
steps = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=500)),
    max_size=120,
)


class TestHeapInvariants:
    @settings(max_examples=50)
    @given(steps)
    def test_no_overlap_and_consistent_lookup(self, operations):
        heap = Heap(AddressSpace("T"))
        live = []
        for is_malloc, size in operations:
            if is_malloc or not live:
                address = heap.malloc(size, "t")
                live.append(address)
            else:
                heap.free(live.pop(0))
            spans = sorted(
                (a.address, a.end) for a in heap.live_allocations
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2
        for address in live:
            allocation = heap.allocation_at(address)
            assert allocation is not None
            assert allocation.address == address

    @settings(max_examples=30)
    @given(steps)
    def test_interior_lookup_matches_linear_scan(self, operations):
        heap = Heap(AddressSpace("T"))
        live = []
        for is_malloc, size in operations:
            if is_malloc or not live:
                live.append(heap.malloc(size, "t"))
            else:
                heap.free(live.pop())
        probes = [a + off for a in live for off in (0, 1, 7)]
        allocations = heap.live_allocations
        for probe in probes:
            expected = next(
                (a for a in allocations if a.contains(probe)), None
            )
            assert heap.allocation_at(probe) is expected


entry_plans = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10**6),   # home address
        st.integers(min_value=8, max_value=64),      # size
    ),
    max_size=60,
    unique_by=lambda t: t[0],
)


class TestAllocationTableInvariants:
    @settings(max_examples=50)
    @given(entry_plans)
    def test_containing_lookup_matches_linear_scan(self, plans):
        table = DataAllocationTable()
        local = 0x10000
        entries = []
        for home_address, size in plans:
            entry = AllocEntry(
                pointer=LongPointer("A", home_address, "t"),
                local_address=local,
                size=size,
                page_number=local // 4096,
                offset=local % 4096,
            )
            table.add(entry)
            entries.append(entry)
            local += size + 16  # leave gaps
        for entry in entries:
            for offset in (0, entry.size - 1):
                assert table.entry_containing(
                    entry.local_address + offset
                ) is entry
            gap = entry.local_address + entry.size + 4
            hit = table.entry_containing(gap)
            assert hit is None or hit is not entry

    @settings(max_examples=50)
    @given(entry_plans, st.randoms())
    def test_remove_keeps_indices_consistent(self, plans, rng):
        table = DataAllocationTable()
        local = 0x10000
        entries = []
        for home_address, size in plans:
            entry = AllocEntry(
                pointer=LongPointer("A", home_address, "t"),
                local_address=local,
                size=size,
                page_number=local // 4096,
                offset=local % 4096,
            )
            table.add(entry)
            entries.append(entry)
            local += size
        rng.shuffle(entries)
        removed = entries[: len(entries) // 2]
        kept = entries[len(entries) // 2:]
        for entry in removed:
            table.remove(entry)
        assert len(table) == len(kept)
        for entry in removed:
            assert table.entry_for(entry.pointer) is None
            assert table.entry_containing(entry.local_address) is None
        for entry in kept:
            assert table.entry_for(entry.pointer) is entry
