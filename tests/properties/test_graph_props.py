"""Property-based cross-method equivalence on random cyclic graphs.

All three transfer policies (eager deep copy, lazy callbacks, the
proposed method) must compute identical answers on arbitrary graphs —
shared structure and cycles included — because they are *transfer*
policies, not semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import METHODS, make_world
from repro.workloads.graphs import (
    GRAPH_OPS,
    bind_graph_server,
    build_random_graph,
    graph_client,
    local_reachable_weight,
    register_graph_types,
)


def run_method(method, num_nodes, seed):
    world = make_world(method)
    for runtime in (world.caller, world.callee):
        register_graph_types(runtime)
    bind_graph_server(world.callee)
    world.caller.import_interface(GRAPH_OPS)
    nodes = build_random_graph(world.caller, num_nodes, seed=seed)
    expected = local_reachable_weight(world.caller, nodes[0])
    stub = graph_client(world.caller, "B")
    with world.caller.session() as session:
        remote = stub.reachable_weight(session, nodes[0])
    return expected, remote


class TestCrossMethodEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_all_methods_agree_with_local_reference(self, num_nodes,
                                                    seed):
        results = set()
        for method in METHODS:
            expected, remote = run_method(method, num_nodes, seed)
            assert remote == expected
            results.add(remote)
        assert len(results) == 1
