"""Fetch-pipeline equivalence properties.

The pipeline is an optimisation, not a semantics change: coalescing,
duplicate suppression and async prefetch may only alter *when* data
moves, never what a procedure computes or what the heaps hold when the
session is over.  Every example here runs one workload twice — once
under the classic ``paper`` policy (every pipeline knob zero, the
byte-identical pass-through) and once under ``pipelined`` — and
requires:

* identical procedure results,
* identical final heap state (the mutated list read back from the
  caller's heap after write-back),
* and, for the pipeline itself, identical protocol counters whether
  the exchanges cross the simulated network or real TCP sockets.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.rpc.session as rpc_session
from repro.bench.harness import (
    SIMNET,
    TCP,
    make_world,
    run_hash_call,
    run_list_call,
)
from repro.workloads.linked_list import build_list, list_client, read_list
from repro.bench.harness import CALLEE

#: Counter fields that must match when the same pipelined session runs
#: over simnet and TCP (wall time excluded by construction).
COMPARED_FIELDS = (
    "callbacks",
    "messages",
    "bytes_moved",
    "page_faults",
    "write_faults",
    "entries",
    "result",
    "round_trips_saved",
    "piggyback_hits",
)

lengths = st.integers(min_value=1, max_value=600)
factors = st.integers(min_value=2, max_value=9)
transports = st.sampled_from([SIMNET, TCP])


def _align_session_ids():
    # Session ids embed a process-wide counter; pin it so paired runs
    # produce identically-sized frames (see test_transport_equivalence).
    rpc_session._session_numbers = itertools.count(500)


def _scale_run(method, transport, length, factor):
    """Run the mutating list workload; return (result, final heap)."""
    _align_session_ids()
    with make_world(method, transport=transport) as world:
        head = build_list(world.caller, list(range(length)))
        stub = list_client(world.caller, CALLEE)
        with world.caller.session() as session:
            result = stub.scale(session, head, factor)
        # Session over: write-back has landed, so the caller's own
        # heap is the final state the pipeline must not corrupt.
        return result, read_list(world.caller, head)


class TestPipelineOnVsOff:
    @settings(max_examples=8, deadline=None)
    @given(lengths)
    def test_readonly_list_result_identical(self, length):
        runs = {}
        for method in ("paper", "pipelined"):
            _align_session_ids()
            world = make_world(method)
            runs[method] = run_list_call(world, length)
        assert runs["paper"].result == runs["pipelined"].result
        assert (
            runs["pipelined"].callbacks <= runs["paper"].callbacks
        ), "the pipeline may never add round trips"

    @settings(max_examples=6, deadline=None)
    @given(lengths, factors, transports)
    def test_mutating_list_final_heap_identical(
        self, length, factor, transport
    ):
        baseline = _scale_run("paper", transport, length, factor)
        pipelined = _scale_run("pipelined", transport, length, factor)
        assert baseline[0] == pipelined[0]
        assert baseline[1] == pipelined[1]
        assert baseline[1] == [value * factor for value in range(length)]

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=10, max_value=400),
        st.integers(min_value=1, max_value=20),
        transports,
    )
    def test_hash_lookup_result_identical(self, keys, lookups, transport):
        results = {}
        for method in ("paper", "pipelined"):
            _align_session_ids()
            with make_world(method, transport=transport) as world:
                results[method] = run_hash_call(world, keys, lookups)
        assert results["paper"].result == results["pipelined"].result


class TestPipelineAcrossTransports:
    """The pipeline's own behaviour must not depend on the transport.

    The simulated overlap (clock rewind) and the executor-thread
    prefetch are different mechanisms; every counter they produce must
    still agree, or the simnet figures would not predict the real
    system.
    """

    @settings(max_examples=6, deadline=None)
    @given(lengths)
    def test_pipelined_list_counters_equal(self, length):
        runs = []
        for transport in (SIMNET, TCP):
            _align_session_ids()
            with make_world("pipelined", transport=transport) as world:
                runs.append(run_list_call(world, length))
        for name in COMPARED_FIELDS:
            assert getattr(runs[0], name) == getattr(runs[1], name), name

    @settings(max_examples=4, deadline=None)
    @given(
        st.integers(min_value=10, max_value=300),
        st.integers(min_value=1, max_value=12),
    )
    def test_pipelined_hash_counters_equal(self, keys, lookups):
        runs = []
        for transport in (SIMNET, TCP):
            _align_session_ids()
            with make_world("pipelined", transport=transport) as world:
                runs.append(run_hash_call(world, keys, lookups))
        for name in COMPARED_FIELDS:
            assert getattr(runs[0], name) == getattr(runs[1], name), name
