"""Stateful property test: random RPC histories preserve semantics.

A hypothesis state machine drives a three-site deployment through
random sequences of remote list operations — traversals, in-place
mutations, remote allocation and release, session boundaries — while
maintaining a plain-Python model of every list.  After every step the
remote state must agree with the model and every session must satisfy
the internal invariants of the smart-RPC runtime.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState
from repro.smartrpc.validate import validate_session
from repro.workloads.linked_list import (
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
    register_list_types,
)
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry

VALUES = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=8
)


class ListRpcMachine(RuleBasedStateMachine):
    """Random remote list manipulation against a Python model."""

    @initialize()
    def setup(self):
        self.network = Network()
        TypeNameServer(self.network.add_site("NS"), TypeRegistry())
        self.runtimes = {}
        for site_id, arch in (("A", SPARC32), ("B", X86_64)):
            site = self.network.add_site(site_id)
            runtime = SmartRpcRuntime(
                self.network, site, arch,
                resolver=TypeResolver(site, "NS"),
            )
            register_list_types(runtime)
            self.runtimes[site_id] = runtime
        bind_list_server(self.runtimes["B"])
        self.runtimes["A"].import_interface(LIST_OPS)
        self.client = list_client(self.runtimes["A"], "B")
        self.session = None
        self.lists = {}   # head address -> model list
        self.next_value = 0

    # -- session management -----------------------------------------------

    @precondition(lambda self: self.session is None)
    @rule()
    def open_session(self):
        self.session = self.runtimes["A"].session()
        self.session.__enter__()

    @precondition(lambda self: self.session is not None)
    @rule()
    def close_session(self):
        self.session.__exit__(None, None, None)
        self.session = None

    # -- list operations ------------------------------------------------------

    @rule(values=VALUES)
    def build(self, values):
        head = build_list(self.runtimes["A"], values)
        self.lists[head] = list(values)

    @precondition(lambda self: self.session and self.lists)
    @rule(factor=st.integers(min_value=-3, max_value=3),
          data=st.data())
    def scale(self, factor, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        self.client.scale(self.session, head, factor)
        self.lists[head] = [v * factor for v in self.lists[head]]

    @precondition(lambda self: self.session and self.lists)
    @rule(count=st.integers(min_value=1, max_value=4), data=st.data())
    def append(self, count, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        start = self.next_value
        self.next_value += count
        self.client.append_range(self.session, head, start, count)
        self.lists[head] += list(range(start, start + count))

    @precondition(lambda self: self.session and self.lists)
    @rule(data=st.data())
    def total(self, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        assert self.client.total(self.session, head) == sum(
            self.lists[head]
        )

    @precondition(lambda self: self.session and self.lists)
    @rule(data=st.data())
    def drop_negatives(self, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        new_head = self.client.drop_negatives(self.session, head)
        model = [v for v in self.lists.pop(head) if v >= 0]
        if new_head != 0:
            self.lists[new_head] = model
        else:
            assert model == []

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def home_memory_matches_model_between_sessions(self):
        # Outside a session every model list must be materialised in
        # A's heap exactly (all dirty data written back).
        if getattr(self, "session", None) is None and hasattr(
            self, "lists"
        ):
            for head, model in self.lists.items():
                assert read_list(self.runtimes["A"], head) == model

    @invariant()
    def smart_sessions_internally_consistent(self):
        if not hasattr(self, "runtimes"):
            return
        for runtime in self.runtimes.values():
            for state in runtime._sessions.values():
                if isinstance(state, SmartSessionState):
                    validate_session(runtime, state)

    def teardown(self):
        if getattr(self, "session", None) is not None:
            self.session.__exit__(None, None, None)


TestListRpcStateMachine = ListRpcMachine.TestCase
TestListRpcStateMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
