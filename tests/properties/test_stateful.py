"""Stateful property tests: random RPC histories preserve semantics.

Two hypothesis state machines drive simulated deployments through
random interleavings:

* :class:`ListRpcMachine` — remote list operations against a plain
  Python model: after every step the remote state must agree with the
  model and every session must satisfy the runtime's invariants.
* :class:`OrphanReaperMachine` — sessions, peer crashes, aborts and
  reaper sweeps in arbitrary orders: however the interleaving goes, a
  torn-down session must leave *nothing* behind — no protected cache
  pages, no allocation-table entries — and a reaper sweep must clear
  every session that lost a participant.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.errors import SessionAbortedError
from repro.smartrpc.policy import make_policy
from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState
from repro.smartrpc.validate import validate_session
from repro.workloads.linked_list import (
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
    register_list_types,
)
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    tree_expose_client,
)
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    register_tree_types,
)
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry
from repro.xdr.view import StructView

VALUES = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=8
)


class ListRpcMachine(RuleBasedStateMachine):
    """Random remote list manipulation against a Python model."""

    @initialize()
    def setup(self):
        self.network = Network()
        TypeNameServer(self.network.add_site("NS"), TypeRegistry())
        self.runtimes = {}
        for site_id, arch in (("A", SPARC32), ("B", X86_64)):
            site = self.network.add_site(site_id)
            runtime = SmartRpcRuntime(
                self.network, site, arch,
                resolver=TypeResolver(site, "NS"),
            )
            register_list_types(runtime)
            self.runtimes[site_id] = runtime
        bind_list_server(self.runtimes["B"])
        self.runtimes["A"].import_interface(LIST_OPS)
        self.client = list_client(self.runtimes["A"], "B")
        self.session = None
        self.lists = {}   # head address -> model list
        self.next_value = 0

    # -- session management -----------------------------------------------

    @precondition(lambda self: self.session is None)
    @rule()
    def open_session(self):
        self.session = self.runtimes["A"].session()
        self.session.__enter__()

    @precondition(lambda self: self.session is not None)
    @rule()
    def close_session(self):
        self.session.__exit__(None, None, None)
        self.session = None

    # -- list operations ------------------------------------------------------

    @rule(values=VALUES)
    def build(self, values):
        head = build_list(self.runtimes["A"], values)
        self.lists[head] = list(values)

    @precondition(lambda self: self.session and self.lists)
    @rule(factor=st.integers(min_value=-3, max_value=3),
          data=st.data())
    def scale(self, factor, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        self.client.scale(self.session, head, factor)
        self.lists[head] = [v * factor for v in self.lists[head]]

    @precondition(lambda self: self.session and self.lists)
    @rule(count=st.integers(min_value=1, max_value=4), data=st.data())
    def append(self, count, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        start = self.next_value
        self.next_value += count
        self.client.append_range(self.session, head, start, count)
        self.lists[head] += list(range(start, start + count))

    @precondition(lambda self: self.session and self.lists)
    @rule(data=st.data())
    def total(self, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        assert self.client.total(self.session, head) == sum(
            self.lists[head]
        )

    @precondition(lambda self: self.session and self.lists)
    @rule(data=st.data())
    def drop_negatives(self, data):
        head = data.draw(st.sampled_from(sorted(self.lists)))
        new_head = self.client.drop_negatives(self.session, head)
        model = [v for v in self.lists.pop(head) if v >= 0]
        if new_head != 0:
            self.lists[new_head] = model
        else:
            assert model == []

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def home_memory_matches_model_between_sessions(self):
        # Outside a session every model list must be materialised in
        # A's heap exactly (all dirty data written back).
        if getattr(self, "session", None) is None and hasattr(
            self, "lists"
        ):
            for head, model in self.lists.items():
                assert read_list(self.runtimes["A"], head) == model

    @invariant()
    def smart_sessions_internally_consistent(self):
        if not hasattr(self, "runtimes"):
            return
        for runtime in self.runtimes.values():
            for state in runtime._sessions.values():
                if isinstance(state, SmartSessionState):
                    validate_session(runtime, state)

    def teardown(self):
        if getattr(self, "session", None) is not None:
            self.session.__exit__(None, None, None)


TestListRpcStateMachine = ListRpcMachine.TestCase
TestListRpcStateMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)


# -- fault tolerance: crashes, aborts and the orphan reaper ------------------

REAPER_GROUND = "G"
REAPER_HOMES = ("H", "T")
REAPER_SITES = (REAPER_GROUND,) + REAPER_HOMES


class OrphanReaperMachine(RuleBasedStateMachine):
    """Random interleavings of sessions, peer crashes and reaper sweeps.

    A ground G runs sessions against two exposing homes H and T while
    the machine crashes peers (including the ground itself) at
    arbitrary points and sweeps the reaper on arbitrary survivors.
    However the interleaving goes:

    * a session state that left its runtime's table keeps no protected
      cache pages and no allocation-table entries — nothing leaks,
      whether it departed by clean close, abort or reap;
    * after a reaper sweep no live runtime holds a session that lost a
      participant;
    * every session a live runtime still holds passes the runtime's
      full internal consistency check.
    """

    @initialize()
    def setup(self):
        self.network = Network()
        TypeNameServer(self.network.add_site("NS"), TypeRegistry())
        self.runtimes = {}
        for site_id in REAPER_SITES:
            site = self.network.add_site(site_id)
            runtime = SmartRpcRuntime(
                self.network, site, X86_64,
                resolver=TypeResolver(site, "NS"),
                policy=make_policy("lazy"),
            )
            register_tree_types(runtime)
            runtime.import_interface(TREE_OPS)
            runtime.import_interface(TREE_EXPOSE)
            self.runtimes[site_id] = runtime
        for home in REAPER_HOMES:
            bind_tree_expose(
                self.runtimes[home],
                build_complete_tree(self.runtimes[home], 3),
            )
        self.spec = self.runtimes[REAPER_GROUND].resolver.resolve(
            TREE_NODE_TYPE_ID
        )
        self.crashed = set()
        self.session = None
        # Every SmartSessionState ever observed, so departed states
        # can still be checked for leaks after their runtime forgot
        # them: id(state) -> (runtime, state).
        self.seen = {}

    # -- bookkeeping ---------------------------------------------------------

    def _track(self):
        for runtime in self.runtimes.values():
            for state in runtime._sessions.values():
                if isinstance(state, SmartSessionState):
                    self.seen[id(state)] = (runtime, state)

    def _ages(self):
        # The failure detector's view: crashed sites stopped
        # heartbeating long ago, live ones are fresh.
        return {
            site_id: (99.0 if site_id in self.crashed else 0.0)
            for site_id in REAPER_SITES
        }

    # -- rules ---------------------------------------------------------------

    @precondition(
        lambda self: self.session is None
        and REAPER_GROUND not in self.crashed
    )
    @rule()
    def open_session(self):
        self.session = self.runtimes[REAPER_GROUND].session()
        self.session.__enter__()
        self._track()

    @precondition(lambda self: self.session is not None)
    @rule(peer=st.sampled_from(REAPER_HOMES),
          datum=st.integers(min_value=0, max_value=255))
    def touch_peer(self, peer, datum):
        # A CALL to the peer, a fault-driven fill of the root page and
        # a local dirty write — or, against a crashed peer, the abort
        # path: the runtime must tear the session down and raise.
        ground = self.runtimes[REAPER_GROUND]
        try:
            pointer = tree_expose_client(ground, peer).tree_root(
                self.session
            )
            view = StructView(
                ground.mem, pointer, self.spec, ground.arch
            )
            view.set("data", datum.to_bytes(8, "big"))
        except SessionAbortedError as exc:
            assert exc.reason.startswith("peer-unreachable:")
            self.session = None
        self._track()

    @precondition(lambda self: self.session is not None)
    @rule(peer=st.sampled_from(REAPER_HOMES))
    def activity_transfer(self, peer):
        # A second CALL carries any dirty data as the modified-data
        # piggyback (the checksum traverses the peer's own tree).
        ground = self.runtimes[REAPER_GROUND]
        try:
            tree_expose_client(ground, peer).tree_checksum(
                self.session
            )
        except SessionAbortedError as exc:
            assert exc.reason.startswith("peer-unreachable:")
            self.session = None
        self._track()

    @precondition(lambda self: self.session is not None)
    @rule()
    def close_session(self):
        # Clean close — or an abort mid two-phase write-back when a
        # dirty home crashed after the write.
        self._track()
        try:
            self.session.__exit__(None, None, None)
        except SessionAbortedError as exc:
            assert exc.reason.startswith("peer-unreachable:")
        self.session = None

    @precondition(
        lambda self: any(h not in self.crashed for h in REAPER_HOMES)
    )
    @rule(data=st.data())
    def crash_home(self, data):
        live = [h for h in REAPER_HOMES if h not in self.crashed]
        victim = data.draw(st.sampled_from(live))
        self.network.crash(victim)
        self.crashed.add(victim)

    @precondition(lambda self: REAPER_GROUND not in self.crashed)
    @rule()
    def crash_ground(self):
        # The ground vanishes mid-session: whatever state the homes
        # hold for it is now orphaned and only the reaper frees it.
        self.network.crash(REAPER_GROUND)
        self.crashed.add(REAPER_GROUND)
        self.session = None

    @rule()
    def reaper_sweep(self):
        self._track()
        ages = self._ages()
        for site_id in REAPER_SITES:
            if site_id in self.crashed:
                continue
            runtime = self.runtimes[site_id]
            reaped = runtime.reap_orphans(ages, grace=1.0)
            if (
                self.session is not None
                and self.session.session_id in reaped
            ):
                # The ground reaped its own session because a
                # participant died; the context manager is spent.
                self.session = None
        # A sweep leaves no live runtime holding a session that lost
        # a participant.
        for site_id in REAPER_SITES:
            if site_id in self.crashed:
                continue
            for state in self.runtimes[site_id]._sessions.values():
                if isinstance(state, SmartSessionState):
                    assert not (state.participants & self.crashed), (
                        site_id,
                        state.session_id,
                        state.participants,
                    )
        # ... and never touches a session whose peers are all alive.
        if self.session is not None:
            ground = self.runtimes[REAPER_GROUND]
            assert self.session.session_id in ground._sessions

    # -- invariants ----------------------------------------------------------

    @invariant()
    def departed_sessions_leak_nothing(self):
        if not hasattr(self, "seen"):
            return
        for runtime, state in self.seen.values():
            if runtime._sessions.get(state.session_id) is state:
                continue
            # Closed, aborted or reaped: every protected page must be
            # unmapped and the allocation table empty.
            assert state.cache.footprint() == (0, 0), (
                runtime.site_id,
                state.session_id,
                state.cache.footprint(),
            )

    @invariant()
    def live_sessions_internally_consistent(self):
        if not hasattr(self, "runtimes"):
            return
        for site_id, runtime in self.runtimes.items():
            if site_id in self.crashed:
                continue
            for state in runtime._sessions.values():
                if isinstance(state, SmartSessionState):
                    validate_session(runtime, state)

    def teardown(self):
        if (
            getattr(self, "session", None) is not None
            and REAPER_GROUND not in self.crashed
        ):
            try:
                self.session.__exit__(None, None, None)
            except SessionAbortedError:
                pass


TestOrphanReaperMachine = OrphanReaperMachine.TestCase
TestOrphanReaperMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
