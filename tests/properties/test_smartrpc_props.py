"""Property-based end-to-end tests of the smart RPC core.

Each example builds a fresh two-site world, runs a remote traversal or
mutation, and checks the result against a pure-Python reference — the
whole stack (swizzling, faulting, closure transfer, coherency) must be
semantics-preserving for arbitrary parameters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.linked_list import (
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
    register_list_types,
)
from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import build_complete_tree, register_tree_types
from repro.xdr.arch import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry


def make_pair(closure_size=8192):
    network = Network()
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id, arch in (("A", SPARC32), ("B", X86_64)):
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            arch,
            resolver=TypeResolver(site, "NS"),
            closure_size=closure_size,
        )
        register_tree_types(runtime)
        register_list_types(runtime)
        runtimes.append(runtime)
    return network, runtimes[0], runtimes[1]


depths = st.integers(min_value=0, max_value=6)
closures = st.sampled_from([0, 64, 256, 8192])


class TestSearchSemantics:
    @settings(max_examples=25, deadline=None)
    @given(depths, st.integers(min_value=0, max_value=127), closures)
    def test_partial_search_equals_reference(self, depth, target,
                                             closure):
        nodes = 2 ** (depth + 1) - 1
        network, a, b = make_pair(closure)
        root = build_complete_tree(a, nodes)
        bind_tree_server(b)
        stub = tree_client(a, "B")
        with a.session() as session:
            checksum = stub.search(session, root, target)
        assert checksum == expected_search_checksum(
            min(target, nodes), nodes
        )


class TestMutationSemantics:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(2**20), max_value=2**20),
            min_size=1,
            max_size=25,
        ),
        st.integers(min_value=-8, max_value=8),
    )
    def test_scale_matches_reference(self, values, factor):
        network, a, b = make_pair()
        bind_list_server(b)
        a.import_interface(LIST_OPS)
        head = build_list(a, values)
        stub = list_client(a, "B")
        with a.session() as session:
            stub.scale(session, head, factor)
        assert read_list(a, head) == [v * factor for v in values]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=1,
            max_size=20,
        )
    )
    def test_drop_negatives_matches_reference(self, values):
        network, a, b = make_pair()
        bind_list_server(b)
        a.import_interface(LIST_OPS)
        head = build_list(a, values)
        stub = list_client(a, "B")
        with a.session() as session:
            new_head = stub.drop_negatives(session, head)
        assert read_list(a, new_head) == [v for v in values if v >= 0]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=12),
    )
    def test_append_range_matches_reference(self, values, count):
        network, a, b = make_pair()
        bind_list_server(b)
        a.import_interface(LIST_OPS)
        head = build_list(a, values)
        stub = list_client(a, "B")
        with a.session() as session:
            stub.append_range(session, head, 1000, count)
        assert read_list(a, head) == values + list(
            range(1000, 1000 + count)
        )
