"""Race-freedom property of the runtime (coherency sanitizer).

The protocol guarantees coherency for the single active thread of
control, so *no* legitimately recorded session may contain a
happens-before violation: for any seeded workload, method, and
carrier, the sanitizer (:mod:`repro.analysis.sanitizer`) must report
nothing.  This pins the vector-clock stamping itself — a carrier that
dropped a merge or an emitter that skipped a stamp would read as
concurrency and fail here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import DiagnosticCollector
from repro.analysis.sanitizer import check_events
from repro.bench.harness import (
    METHODS,
    SIMNET,
    TCP,
    make_world,
    run_hash_call,
    run_tree_call,
)

depths = st.integers(min_value=0, max_value=4)
procedures = st.sampled_from(["search", "search_update"])
methods = st.sampled_from(METHODS)


def sanitize(events):
    collector = DiagnosticCollector()
    check_events(events, collector)
    return sorted(d.code for d in collector)


class TestSimnetSessionsAreRaceFree:
    @settings(max_examples=10, deadline=None)
    @given(depths, procedures, methods)
    def test_tree_sessions(self, depth, procedure, method):
        nodes = 2 ** (depth + 1) - 1
        with make_world(method, transport=SIMNET, trace=True) as world:
            run_tree_call(world, nodes, procedure, ratio=1.0)
            events = list(world.stats.events)
        assert events, "tracing was enabled but recorded nothing"
        assert sanitize(events) == []

    @settings(max_examples=4, deadline=None)
    @given(
        st.integers(min_value=8, max_value=48),
        st.integers(min_value=1, max_value=4),
    )
    def test_hash_sessions(self, keys, lookups):
        with make_world(transport=SIMNET, trace=True) as world:
            run_hash_call(world, keys, lookups)
            events = list(world.stats.events)
        assert sanitize(events) == []


class TestTcpSessionsAreRaceFree:
    @settings(max_examples=3, deadline=None)
    @given(depths, procedures)
    def test_tree_sessions(self, depth, procedure):
        nodes = 2 ** (depth + 1) - 1
        with make_world(transport=TCP, trace=True) as world:
            run_tree_call(world, nodes, procedure, ratio=1.0)
            events = list(world.stats.events)
        assert events, "tracing was enabled but recorded nothing"
        assert sanitize(events) == []
