"""Property-based tests for struct layout invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xdr.arch import ALPHA64, SPARC32, X86_64
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
)

ARCHES = [SPARC32, X86_64, ALPHA64]

field_specs = st.one_of(
    st.sampled_from(list(ScalarKind)).map(ScalarType),
    st.integers(min_value=1, max_value=32).map(OpaqueType),
    st.just(PointerType("t")),
    st.builds(
        ArrayType,
        st.sampled_from(list(ScalarKind)).map(ScalarType),
        st.integers(min_value=1, max_value=4),
    ),
)

structs = st.builds(
    lambda specs: StructType(
        "s", [Field(f"f{i}", spec) for i, spec in enumerate(specs)]
    ),
    st.lists(field_specs, min_size=1, max_size=8),
)


class TestLayoutInvariants:
    @settings(max_examples=80)
    @given(structs, st.sampled_from(ARCHES))
    def test_fields_do_not_overlap(self, spec, arch):
        layout = spec.layout(arch)
        spans = sorted(
            (layout.offsets[field.name],
             layout.offsets[field.name] + field.spec.sizeof(arch))
            for field in spec.fields
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @settings(max_examples=80)
    @given(structs, st.sampled_from(ARCHES))
    def test_fields_aligned(self, spec, arch):
        layout = spec.layout(arch)
        for field in spec.fields:
            alignment = field.spec.alignment(arch)
            assert layout.offsets[field.name] % alignment == 0

    @settings(max_examples=80)
    @given(structs, st.sampled_from(ARCHES))
    def test_size_holds_all_fields_and_is_padded(self, spec, arch):
        layout = spec.layout(arch)
        for field in spec.fields:
            end = layout.offsets[field.name] + field.spec.sizeof(arch)
            assert end <= layout.size
        assert layout.size % layout.alignment == 0

    @settings(max_examples=80)
    @given(structs, st.sampled_from(ARCHES))
    def test_pointer_fields_within_struct(self, spec, arch):
        for offset, pointer_spec in spec.pointer_fields(arch):
            assert 0 <= offset
            assert offset + arch.pointer_size <= spec.sizeof(arch)

    @settings(max_examples=40)
    @given(structs)
    def test_canonical_size_is_architecture_free(self, spec):
        # canonical_size takes no architecture: assert it is stable and
        # at least 4 bytes per field
        assert spec.canonical_size() >= 4 * len(spec.fields)
