"""Property-based tests for the XDR canonical stream and type specs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xdr.registry import spec_from_bytes, spec_to_bytes
from repro.xdr.stream import XdrDecoder, XdrEncoder
from repro.xdr.types import (
    ArrayType,
    Field,
    OpaqueType,
    PointerType,
    ScalarKind,
    ScalarType,
    StructType,
)

uint32s = st.integers(min_value=0, max_value=2**32 - 1)
int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
uint64s = st.integers(min_value=0, max_value=2**64 - 1)
int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
blobs = st.binary(max_size=200)
texts = st.text(max_size=80)


class TestStreamRoundTrips:
    @given(uint32s)
    def test_uint32(self, value):
        encoder = XdrEncoder()
        encoder.pack_uint32(value)
        assert XdrDecoder(encoder.getvalue()).unpack_uint32() == value

    @given(int32s)
    def test_int32(self, value):
        encoder = XdrEncoder()
        encoder.pack_int32(value)
        assert XdrDecoder(encoder.getvalue()).unpack_int32() == value

    @given(uint64s)
    def test_uint64(self, value):
        encoder = XdrEncoder()
        encoder.pack_uint64(value)
        assert XdrDecoder(encoder.getvalue()).unpack_uint64() == value

    @given(int64s)
    def test_int64(self, value):
        encoder = XdrEncoder()
        encoder.pack_int64(value)
        assert XdrDecoder(encoder.getvalue()).unpack_int64() == value

    @given(blobs)
    def test_opaque(self, data):
        encoder = XdrEncoder()
        encoder.pack_opaque(data)
        decoder = XdrDecoder(encoder.getvalue())
        assert decoder.unpack_opaque() == data
        decoder.expect_done()

    @given(texts)
    def test_string(self, text):
        encoder = XdrEncoder()
        encoder.pack_string(text)
        assert XdrDecoder(encoder.getvalue()).unpack_string() == text

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double(self, value):
        encoder = XdrEncoder()
        encoder.pack_double(value)
        assert XdrDecoder(encoder.getvalue()).unpack_double() == value

    @given(st.lists(st.tuples(uint32s, blobs), max_size=20))
    def test_interleaved_sequence(self, items):
        encoder = XdrEncoder()
        for number, blob in items:
            encoder.pack_uint32(number)
            encoder.pack_opaque(blob)
        decoder = XdrDecoder(encoder.getvalue())
        for number, blob in items:
            assert decoder.unpack_uint32() == number
            assert decoder.unpack_opaque() == blob
        decoder.expect_done()

    @given(blobs)
    def test_stream_always_four_byte_aligned(self, data):
        encoder = XdrEncoder()
        encoder.pack_opaque(data)
        assert len(encoder.getvalue()) % 4 == 0


identifiers = st.text(
    alphabet=st.sampled_from("abcdefghij_"), min_size=1, max_size=8
)


def type_specs(max_depth=3):
    scalars = st.sampled_from(list(ScalarKind)).map(ScalarType)
    opaques = st.integers(min_value=1, max_value=64).map(OpaqueType)
    pointers = identifiers.map(PointerType)
    base = st.one_of(scalars, opaques, pointers)

    def extend(children):
        arrays = st.builds(
            ArrayType,
            children,
            st.integers(min_value=1, max_value=5),
        )
        structs = st.builds(
            lambda name, specs: StructType(
                name,
                [Field(f"f{i}", spec) for i, spec in enumerate(specs)],
            ),
            identifiers,
            st.lists(children, min_size=1, max_size=4),
        )
        return st.one_of(arrays, structs)

    return st.recursive(base, extend, max_leaves=8)


class TestSpecWireForm:
    @settings(max_examples=60)
    @given(type_specs())
    def test_any_spec_round_trips(self, spec):
        assert spec_from_bytes(spec_to_bytes(spec)) == spec
