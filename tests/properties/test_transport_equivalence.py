"""Transport and policy equivalence properties.

Two independent invariances meet here:

* **Transport equivalence** — the transport is a carrier, not a
  participant: for any seeded session the smart-RPC layer must produce
  byte-identical results and identical protocol counters whether the
  frames cross a simulated network, real localhost sockets, or
  shared-memory segments (where bulk payloads never touch a wire at
  all — the counters still charge the logical bytes).
* **Policy equivalence** — a transfer policy decides *how much* moves
  *when*, never *what the procedure computes*: every preset must
  produce the identical procedure result on every workload, over both
  transports.

Each example runs the same workload through ``make_world`` across the
compared axis and diffs everything but wall-clock time (simulated
seconds and real seconds legitimately differ; traffic legitimately
differs across policies).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.rpc.session as rpc_session
from repro.bench.harness import (
    CALLEE,
    METHODS,
    POLICIES,
    PROPOSED,
    SHM,
    SIMNET,
    TCP,
    make_world,
    run_hash_call,
    run_tree_call,
)
from repro.workloads.linked_list import (
    LIST_OPS,
    build_list,
    list_client,
    read_list,
)

#: ExperimentRun fields that must match across transports — all of
#: them except ``seconds`` (modeled time vs. measured wall time).
COMPARED_FIELDS = (
    "method",
    "callbacks",
    "messages",
    "bytes_moved",
    "page_faults",
    "write_faults",
    "entries",
    "result",
)

depths = st.integers(min_value=0, max_value=4)
ratios = st.sampled_from([0.1, 0.5, 1.0])
procedures = st.sampled_from(["search", "search_update"])
methods = st.sampled_from(METHODS)


def _align_session_ids():
    """Restart the global session counter for one compared pair.

    Session ids embed a process-wide counter; when the compared runs
    straddle a digit-count boundary (``A#9`` vs ``A#10``), XDR string
    padding shifts ``bytes_moved`` by one word per message.  Pinning
    the counter makes the paired sessions byte-identical.
    """
    rpc_session._session_numbers = itertools.count(100)


def _tree_run(transport, method, nodes, procedure, ratio):
    with make_world(method, transport=transport) as world:
        return run_tree_call(world, nodes, procedure, ratio=ratio)


class TestTreeEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(depths, ratios, procedures, methods)
    def test_same_session_same_counters(
        self, depth, ratio, procedure, method
    ):
        nodes = 2 ** (depth + 1) - 1
        _align_session_ids()
        simulated = _tree_run(SIMNET, method, nodes, procedure, ratio)
        for transport in (TCP, SHM):
            real = _tree_run(transport, method, nodes, procedure, ratio)
            for name in COMPARED_FIELDS:
                assert getattr(simulated, name) == getattr(real, name), (
                    transport,
                    name,
                )

    @settings(max_examples=5, deadline=None)
    @given(depths, st.integers(min_value=1, max_value=8))
    def test_path_search_equivalent(self, depth, seed):
        nodes = 2 ** (depth + 1) - 1
        _align_session_ids()
        runs = [
            _tree_run_path(transport, nodes, seed)
            for transport in (SIMNET, TCP, SHM)
        ]
        for run in runs[1:]:
            for name in COMPARED_FIELDS:
                assert getattr(runs[0], name) == getattr(run, name), name


def _tree_run_path(transport, nodes, seed):
    with make_world(PROPOSED, transport=transport) as world:
        return run_tree_call(
            world, nodes, "path_search", repeats=3, seed=seed
        )


class TestPolicyEquivalence:
    """Every transfer policy computes the same procedure results."""

    @settings(max_examples=4, deadline=None)
    @given(depths, ratios, procedures)
    def test_tree_result_identical_across_policies(
        self, depth, ratio, procedure
    ):
        nodes = 2 ** (depth + 1) - 1
        results = {}
        for policy in POLICIES:
            world = make_world(policy)
            run = run_tree_call(world, nodes, procedure, ratio=ratio)
            results[policy] = run.result
        assert len(set(results.values())) == 1, results

    @settings(max_examples=3, deadline=None)
    @given(
        st.integers(min_value=8, max_value=80),
        st.integers(min_value=1, max_value=6),
    )
    def test_hash_result_identical_across_policies(self, keys, lookups):
        results = {}
        for policy in POLICIES:
            world = make_world(policy)
            run = run_hash_call(world, keys, lookups)
            results[policy] = run.result
        assert len(set(results.values())) == 1, results

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_counters_match_across_transports(self, policy):
        runs = []
        _align_session_ids()
        for transport in (SIMNET, TCP, SHM):
            with make_world(policy, transport=transport) as world:
                runs.append(
                    run_tree_call(world, 31, "search", ratio=1.0)
                )
        for run in runs[1:]:
            for name in COMPARED_FIELDS:
                assert getattr(runs[0], name) == getattr(run, name), name

    @pytest.mark.parametrize("policy", POLICIES)
    def test_hash_counters_match_across_transports(self, policy):
        runs = []
        _align_session_ids()
        for transport in (SIMNET, TCP, SHM):
            with make_world(policy, transport=transport) as world:
                runs.append(run_hash_call(world, 40, 3))
        for run in runs[1:]:
            for name in COMPARED_FIELDS:
                assert getattr(runs[0], name) == getattr(run, name), name


class TestMutationEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(2**20), max_value=2**20),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=-8, max_value=8),
    )
    def test_scale_bytes_identical(self, values, factor):
        outcomes = []
        _align_session_ids()
        for transport in (SIMNET, TCP, SHM):
            with make_world(PROPOSED, transport=transport) as world:
                world.caller.import_interface(LIST_OPS)
                head = build_list(world.caller, values)
                stub = list_client(world.caller, CALLEE)
                with world.caller.session() as session:
                    stub.scale(session, head, factor)
                outcomes.append(
                    (
                        read_list(world.caller, head),
                        world.stats.total_messages,
                        world.stats.total_bytes,
                    )
                )
        assert outcomes[0] == outcomes[1] == outcomes[2]
        assert outcomes[0][0] == [v * factor for v in values]
