"""Transport equivalence: simnet and TCP runs are indistinguishable.

The transport is a carrier, not a participant: for any seeded session
the smart-RPC layer must produce byte-identical results and identical
protocol counters whether the frames cross a simulated network or real
localhost sockets.  Each example runs the same workload through
``make_world`` twice — once per transport — and diffs everything but
wall-clock time (simulated seconds and real seconds legitimately
differ).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import (
    CALLEE,
    METHODS,
    PROPOSED,
    SIMNET,
    TCP,
    make_world,
    run_tree_call,
)
from repro.workloads.linked_list import (
    LIST_OPS,
    build_list,
    list_client,
    read_list,
)

#: ExperimentRun fields that must match across transports — all of
#: them except ``seconds`` (modeled time vs. measured wall time).
COMPARED_FIELDS = (
    "method",
    "callbacks",
    "messages",
    "bytes_moved",
    "page_faults",
    "write_faults",
    "entries",
    "result",
)

depths = st.integers(min_value=0, max_value=4)
ratios = st.sampled_from([0.1, 0.5, 1.0])
procedures = st.sampled_from(["search", "search_update"])
methods = st.sampled_from(METHODS)


def _tree_run(transport, method, nodes, procedure, ratio):
    with make_world(method, transport=transport) as world:
        return run_tree_call(world, nodes, procedure, ratio=ratio)


class TestTreeEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(depths, ratios, procedures, methods)
    def test_same_session_same_counters(
        self, depth, ratio, procedure, method
    ):
        nodes = 2 ** (depth + 1) - 1
        simulated = _tree_run(SIMNET, method, nodes, procedure, ratio)
        real = _tree_run(TCP, method, nodes, procedure, ratio)
        for name in COMPARED_FIELDS:
            assert getattr(simulated, name) == getattr(real, name), name

    @settings(max_examples=5, deadline=None)
    @given(depths, st.integers(min_value=1, max_value=8))
    def test_path_search_equivalent(self, depth, seed):
        nodes = 2 ** (depth + 1) - 1
        runs = [
            _tree_run_path(transport, nodes, seed)
            for transport in (SIMNET, TCP)
        ]
        for name in COMPARED_FIELDS:
            assert getattr(runs[0], name) == getattr(runs[1], name), name


def _tree_run_path(transport, nodes, seed):
    with make_world(PROPOSED, transport=transport) as world:
        return run_tree_call(
            world, nodes, "path_search", repeats=3, seed=seed
        )


class TestMutationEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-(2**20), max_value=2**20),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=-8, max_value=8),
    )
    def test_scale_bytes_identical(self, values, factor):
        outcomes = []
        for transport in (SIMNET, TCP):
            with make_world(PROPOSED, transport=transport) as world:
                world.caller.import_interface(LIST_OPS)
                head = build_list(world.caller, values)
                stub = list_client(world.caller, CALLEE)
                with world.caller.session() as session:
                    stub.scale(session, head, factor)
                outcomes.append(
                    (
                        read_list(world.caller, head),
                        world.stats.total_messages,
                        world.stats.total_bytes,
                    )
                )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == [v * factor for v in values]
