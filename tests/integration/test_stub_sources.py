"""The full generated-stub pipeline against every workload interface."""

import pytest

from repro.rpc.stubgen import emit_stub_source, interface_signature
from repro.workloads.graphs import GRAPH_OPS
from repro.workloads.hashtable import HASH_OPS
from repro.workloads.linked_list import LIST_OPS
from repro.workloads.traversal import TREE_OPS

INTERFACES = [TREE_OPS, HASH_OPS, LIST_OPS, GRAPH_OPS]


@pytest.mark.parametrize(
    "interface", INTERFACES, ids=[i.name for i in INTERFACES]
)
def test_every_workload_interface_emits_compilable_stubs(interface):
    source = emit_stub_source(interface)
    namespace = {}
    exec(compile(source, f"<{interface.name}>", "exec"), namespace)
    class_name = [
        name for name in namespace if name.endswith("Client")
    ]
    assert len(class_name) == 1


@pytest.mark.parametrize(
    "interface", INTERFACES, ids=[i.name for i in INTERFACES]
)
def test_signatures_qualified_consistently(interface):
    for qualified in interface_signature(interface):
        assert qualified.startswith(interface.name + ".")


def test_generated_tree_stub_serves_real_calls(smart_pair):
    from repro.workloads.traversal import bind_tree_server
    from repro.workloads.trees import build_complete_tree

    bind_tree_server(smart_pair.b)
    smart_pair.a.import_interface(TREE_OPS)
    namespace = {}
    exec(compile(emit_stub_source(TREE_OPS), "<gen>", "exec"), namespace)
    stub = namespace["TreeOpsClient"](smart_pair.a, "B")
    root = build_complete_tree(smart_pair.a, 15)
    with smart_pair.a.session() as session:
        assert stub.search(session, root, 15) == sum(range(15))
        assert stub.search_repeat(session, root, 15, 2) == (
            2 * (sum(range(15)) )
        )
