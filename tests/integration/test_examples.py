"""Every example script must run cleanly (they assert internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # every example reports something


def test_example_inventory():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
