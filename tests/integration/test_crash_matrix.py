"""The crash matrix: every role × every protocol step, every carrier.

One scenario (:func:`repro.transport.host.run_crash_session`) runs a
ground session from G against two exposing homes H and T — calls,
fault-driven fills, writes, activity transfers with the modified-data
piggyback, and the two-phase session-end write-back.  Each matrix cell
kills exactly one participant at exactly one protocol step:

* role ``caller`` — the ground G dies right after *sending* the step's
  frame (delivered, reply lost with the sender);
* role ``callee`` — the first home H dies right before *processing*
  the step's frame;
* role ``third`` — the second home T dies the same way.

Determinism comes from counting frames, not from timing: the simnet
cells use :meth:`Network.plan_crash` and the real-process cells spawn
victim processes with ``crash-send=KIND:N`` / ``crash-recv=KIND:N``
fault clauses (the process ``os._exit``\\ s with code 86 at the
planned frame).  The real-process half runs once per carrier — TCP
sockets and shared-memory segments — because shm adds crash surface of
its own: a victim dies holding ring slots and pinned segment extents,
and the survivors must reap those (stale-owner purge, extent pin
expiry, epoch validation) as well as the sessions.  After every cell
the survivors must converge: the aborting ground reaps its own state,
peers of a dead ground reap on heartbeat age, peers of a live aborting
ground are invalidated — no session stays open, no cache page stays
mapped, and every surviving home heap is either fully original or
fully updated.  There are no wall-clock sleeps anywhere: process cells
block on the hosts' STATUS readiness barrier instead.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis import sanitizer, trace_rules
from repro.analysis.diagnostics import DiagnosticCollector
from repro.namesvc.client import TypeResolver
from repro.namesvc.directory import DirectoryClient
from repro.namesvc.server import TypeNameServer
from repro.simnet.message import MessageKind
from repro.simnet.network import Network
from repro.simnet.stats import StatsCollector
from repro.simnet.tracefmt import events_for_session, save_trace
from repro.smartrpc.errors import SessionAbortedError
from repro.smartrpc.policy import make_policy
from repro.smartrpc.runtime import SmartRpcRuntime, SmartSessionState
from repro.smartrpc.validate import validate_session
from repro.transport.base import RetryPolicy, TransportError
from repro.transport.host import (
    CRASH_SCENARIO_MARK,
    RUN_ABORTED,
    decode_run_reply,
    encode_run_session,
    make_space,
    query_status,
    run_crash_session,
)
from repro.transport.shm import purge_stale_segments
from repro.transport.tracemerge import export_trace, merge_trace_files
from repro.workloads.traversal import (
    TREE_EXPOSE,
    TREE_OPS,
    bind_tree_expose,
    tree_expose_client,
)
from repro.workloads.trees import (
    build_complete_tree,
    local_tree_checksum,
    register_tree_types,
)
from repro.xdr.arch import SPARC32
from repro.xdr.registry import TypeRegistry

GROUND = "G"
HOMES = ("H", "T")
EXPOSED_NODES = 7
ORIGINAL_SUM = sum(range(EXPOSED_NODES))
#: The scenario overwrites each root's datum 0 with the mark.
MARKED_SUM = ORIGINAL_SUM + CRASH_SCENARIO_MARK

ROLE_SITE = {"caller": GROUND, "callee": "H", "third": "T"}
STEPS = (
    "call",
    "fault-fill",
    "activity-transfer",
    "writeback-prepare",
    "writeback-commit",
)

#: Caller cells kill the ground at its Nth *sent* frame of a kind.
#: The scenario's send order is CALL(H) CALL(T) DR(H) DR(T) CALL(H)
#: CALL(T) WBP(H) WBP(T) WBC(H) WBC(T), so the third CALL is the
#: first activity transfer carrying the modified-data piggyback.
GROUND_SEND = {
    "call": (MessageKind.CALL, 1),
    "fault-fill": (MessageKind.DATA_REQUEST, 1),
    "activity-transfer": (MessageKind.CALL, 3),
    "writeback-prepare": (MessageKind.WRITEBACK_PREPARE, 1),
    "writeback-commit": (MessageKind.WRITEBACK_COMMIT, 1),
}

#: Callee/third cells kill a home at its Nth *received* frame: each
#: home sees two CALLs (tree_root, then the checksum activity
#: transfer), one DATA_REQUEST and one prepare/commit pair.
VICTIM_RECV = {
    "call": (MessageKind.CALL, 1),
    "fault-fill": (MessageKind.DATA_REQUEST, 1),
    "activity-transfer": (MessageKind.CALL, 2),
    "writeback-prepare": (MessageKind.WRITEBACK_PREPARE, 1),
    "writeback-commit": (MessageKind.WRITEBACK_COMMIT, 1),
}

#: Surviving homes whose heap must show the mark after the cell.  A
#: home's heap updates when *it* receives the activity transfer (the
#: overwrite piggyback applies home-bound dirty data at the home) or a
#: write-back commit; every other surviving heap must be untouched —
#: fully original or fully updated, never in between.
MARKED = {
    ("caller", "activity-transfer"): {"H"},
    ("caller", "writeback-prepare"): {"H", "T"},
    ("caller", "writeback-commit"): {"H", "T"},
    ("callee", "writeback-prepare"): {"T"},
    ("callee", "writeback-commit"): {"T"},
    ("third", "activity-transfer"): {"H"},
    ("third", "writeback-prepare"): {"H"},
    ("third", "writeback-commit"): {"H"},
}

#: Survivors left holding orphaned session state that only the
#: heartbeat reaper can release (peers of a dead ground).  Peers of a
#: live aborting ground are invalidated instead, and the ground reaps
#: itself synchronously inside the abort.
NEED_REAP = {
    ("caller", "call"): {"H"},
    ("caller", "fault-fill"): {"H", "T"},
    ("caller", "activity-transfer"): {"H", "T"},
    ("caller", "writeback-prepare"): {"H", "T"},
    ("caller", "writeback-commit"): {"H", "T"},
}

CELLS = [(role, step) for role in ROLE_SITE for step in STEPS]


def _cell_plan(role, step):
    """The victim site and its crash plan for one cell."""
    victim = ROLE_SITE[role]
    if role == "caller":
        kind, nth = GROUND_SEND[step]
        return victim, "send", kind, nth
    kind, nth = VICTIM_RECV[step]
    return victim, "recv", kind, nth


def _gate_events(events):
    """Both offline gates over one in-memory trace.

    The conformance rules must raise no errors, and the coherency
    sanitizer must raise nothing at all — crash semantics (aborted
    sessions, reaped orphans, a victim's genuinely concurrent final
    writes) are understood by the SRPC4xx rules, not suppressed here.
    """
    collector = DiagnosticCollector()
    trace_rules.check_events(events, collector)
    assert collector.errors == [], [d.render() for d in collector.errors]
    races = DiagnosticCollector()
    sanitizer.check_events(events, races)
    assert list(races) == [], [d.render() for d in races]


# -- the simulated half ------------------------------------------------------


def make_crash_world():
    """NS + ground G + two exposing homes H, T on one simnet network.

    The fully lazy policy (closure budget 0) makes the message
    sequence exactly the ten session frames the ordinal tables above
    count on: no eager closure means every dereference is one
    DATA_REQUEST.
    """
    stats = StatsCollector(trace=True)
    network = Network(stats=stats)
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = {}
    for site_id in (GROUND,) + HOMES:
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            SPARC32,
            resolver=TypeResolver(site, "NS"),
            policy=make_policy("lazy"),
        )
        register_tree_types(runtime)
        runtime.import_interface(TREE_OPS)
        runtime.import_interface(TREE_EXPOSE)
        runtimes[site_id] = runtime
    roots = {}
    for site_id in HOMES:
        roots[site_id] = build_complete_tree(
            runtimes[site_id], EXPOSED_NODES
        )
        bind_tree_expose(runtimes[site_id], roots[site_id])
    return network, stats, runtimes, roots


@pytest.mark.parametrize("role,step", CELLS)
def test_simnet_crash_cell(role, step):
    network, stats, runtimes, roots = make_crash_world()
    victim, side, kind, nth = _cell_plan(role, step)
    network.plan_crash(victim, side, kind, nth)

    with pytest.raises(SessionAbortedError) as aborted:
        run_crash_session(runtimes[GROUND], list(HOMES))
    # Every cell surfaces as an unreachable peer at the ground: a dead
    # callee fails the exchange directly, and a dying ground's own
    # send is the last thing it does.
    assert aborted.value.reason.startswith(
        "peer-unreachable:"
    ), aborted.value.reason
    assert network.is_crashed(victim)

    survivors = [s for s in (GROUND,) + HOMES if s != victim]
    # Orphaned state a survivor still holds must be internally
    # consistent before the reaper discards it.
    for site_id in survivors:
        runtime = runtimes[site_id]
        for state in list(runtime._sessions.values()):
            if isinstance(state, SmartSessionState):
                validate_session(runtime, state)

    # The failure detector's view: the victim stopped heartbeating.
    ages = {
        site_id: (99.0 if site_id == victim else 0.0)
        for site_id in (GROUND,) + HOMES
    }
    for site_id in survivors:
        reaped = runtimes[site_id].reap_orphans(ages, grace=1.0)
        expected = NEED_REAP.get((role, step), set())
        assert len(reaped) == (1 if site_id in expected else 0), (
            site_id,
            reaped,
        )

    # Convergence: no survivor keeps any session state, cache pages
    # or allocation-table entries for the dead session.
    for site_id in survivors:
        open_sessions = [
            state
            for state in runtimes[site_id]._sessions.values()
            if isinstance(state, SmartSessionState)
        ]
        assert open_sessions == [], site_id

    # Atomicity: every surviving home heap is fully original or fully
    # updated — a crash at any step never leaves it in between.
    for site_id in HOMES:
        if site_id == victim:
            continue
        checksum = local_tree_checksum(runtimes[site_id], roots[site_id])
        if site_id in MARKED.get((role, step), set()):
            assert checksum == MARKED_SUM, (site_id, checksum)
        else:
            assert checksum == ORIGINAL_SUM, (site_id, checksum)

    assert stats.sessions_aborted >= 1
    assert stats.orphans_reaped >= 1
    # The aborted session's own sub-trace records its full lifecycle:
    # it aborted somewhere and every reap names it.
    session_events = events_for_session(
        stats.events, aborted.value.session_id
    )
    lifecycle = {event.category for event in session_events}
    assert {"session-abort", "orphan-reaped"} <= lifecycle, lifecycle
    _gate_events(stats.events)


def test_simnet_session_deadline_aborts():
    """A session open past its deadline aborts on its next exchange."""
    network, stats, runtimes, roots = make_crash_world()
    ground = runtimes[GROUND]
    ground.policy.session_deadline = 1e-9
    with pytest.raises(SessionAbortedError) as aborted:
        run_crash_session(ground, list(HOMES))
    assert aborted.value.reason == "deadline"
    assert not any(
        isinstance(state, SmartSessionState)
        for state in ground._sessions.values()
    )
    _gate_events(stats.events)


def test_simnet_caller_survives_callee_crash_and_runs_again():
    """After a callee dies mid-session the ground retries elsewhere."""
    network, stats, runtimes, roots = make_crash_world()
    network.plan_crash("H", "recv", MessageKind.DATA_REQUEST, 1)
    with pytest.raises(SessionAbortedError):
        run_crash_session(runtimes[GROUND], list(HOMES))
    # A fresh session against the surviving home completes cleanly.
    checksums = run_crash_session(runtimes[GROUND], ["T"])
    assert checksums["T"] in (ORIGINAL_SUM, MARKED_SUM)
    assert local_tree_checksum(runtimes["T"], roots["T"]) == MARKED_SUM
    _gate_events(stats.events)


# -- the real-process half (TCP and shared memory) ---------------------------

SPAWN_TIMEOUT = 30
CRASH_EXIT = 86
HEARTBEAT = 0.1
GRACE = 0.5
#: The ground's per-exchange cap: dead peers are declared unreachable
#: after this long instead of after the transport's full schedule.
EXCHANGE_TIMEOUT = 1.0
#: A schedule long enough to sit on the STATUS barrier; the exchange
#: cap above is what keeps dead-peer exchanges fast.
PATIENT_RETRY = RetryPolicy(
    timeout=0.25, backoff=2.0, max_timeout=2.0, max_attempts=6
)


def _env():
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    return env


class HostProcess:
    """One spawned ``python -m repro.transport serve`` process."""

    def __init__(self, site_id, *args, transport="tcp"):
        self.site_id = site_id
        self.transport = transport
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.transport", "serve",
                "--site", site_id, "--transport", transport, *args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_env(),
        )
        line = self.proc.stdout.readline().strip()
        assert line.startswith("READY "), f"bad READY line: {line!r}"
        self.addr = line.split("addr=")[1]

    def shutdown(self, registry_addr):
        subprocess.run(
            [
                sys.executable, "-m", "repro.transport", "shutdown",
                "--site", self.site_id, "--registry", registry_addr,
                "--transport", self.transport,
            ],
            env=_env(),
            capture_output=True,
            timeout=SPAWN_TIMEOUT,
            check=True,
        )

    def wait_crashed(self):
        """Block until the planned os._exit(86) crash happens."""
        self.proc.communicate(timeout=SPAWN_TIMEOUT)
        assert self.proc.returncode == CRASH_EXIT, self.proc.returncode

    def wait(self):
        stdout, stderr = self.proc.communicate(timeout=SPAWN_TIMEOUT)
        assert self.proc.returncode == 0, stderr[-2000:]

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


@pytest.fixture(scope="module", params=["tcp", "shm"])
def registry(request):
    """One registry per carrier, shared by that carrier's cells
    (sites use unique ids)."""
    host = HostProcess("NS", "--serve-registry", transport=request.param)
    yield host
    host.kill()
    if request.param == "shm":
        # The registry dies by SIGKILL and the final cell's victim by
        # os._exit: neither unlinks, so sweep their segments here.
        purge_stale_segments()


def _register(directory, transport):
    """Register a transport whose address may be a segment name."""
    address = transport.address
    if isinstance(address, tuple):
        directory.register(*address)
    else:  # shm: the listener segment name, published with port 0
        directory.register(address, 0)


def _spawn_home(site_id, registry_addr, trace_path, carrier, fault=None):
    args = [
        "--registry", registry_addr,
        "--method", "lazy",
        "--heartbeat", str(HEARTBEAT),
        "--orphan-grace", str(GRACE),
        "--expose-tree", str(EXPOSED_NODES),
        "--trace", str(trace_path),
    ]
    if fault is not None:
        args += ["--fault", fault]
    return HostProcess(site_id, *args, transport=carrier)


def _barrier(endpoint, site, *, min_reaped=0):
    """Wait for a host to be live (and to have reaped, if asked)."""
    return query_status(
        endpoint,
        site,
        min_heartbeats=1,
        min_reaped=min_reaped,
        max_wait=8.0,
    )


def _checksum(runtime, home):
    """One fresh probe session reading a surviving home's own heap."""
    with runtime.session() as session:
        return tree_expose_client(runtime, home).tree_checksum(session)


@pytest.mark.parametrize("role,step", CELLS)
def test_process_crash_cell(role, step, registry, tmp_path):
    carrier = registry.transport
    host, port = registry.addr.rsplit(":", 1)
    registry_pair = (host, int(port))
    cell = f"{role[0]}{STEPS.index(step)}"
    sites = {
        name: f"{name}{cell}" for name in (GROUND,) + HOMES
    }
    victim, side, kind, nth = _cell_plan(role, step)
    clause = ("crash-send" if side == "send" else "crash-recv")
    fault = f"{clause}={kind.value}:{nth}"

    hosts = []
    stats = StatsCollector(trace=True)
    transport = None
    try:
        for name in HOMES:
            hosts.append(
                _spawn_home(
                    sites[name],
                    registry.addr,
                    tmp_path / f"{name}.jsonl",
                    carrier,
                    fault=fault if name == victim else None,
                )
            )
        peers = [sites[name] for name in HOMES]
        if role == "caller":
            # The ground is a spawned host with a planned crash,
            # driven from here through RUN_SESSION.
            ground_args = [
                "--registry", registry.addr,
                "--method", "lazy",
                "--heartbeat", str(HEARTBEAT),
                "--fault", fault,
            ]
            ground_host = HostProcess(
                sites[GROUND], *ground_args, transport=carrier
            )
            hosts.append(ground_host)
            transport, runtime = make_space(
                f"probe{cell}",
                method="lazy",
                registry=registry_pair,
                stats=stats,
                retry=PATIENT_RETRY,
                exchange_timeout=EXCHANGE_TIMEOUT,
                transport=carrier,
            )
            directory = DirectoryClient(transport.endpoint, "NS")
            _register(directory, transport)
            with pytest.raises(TransportError):
                transport.endpoint.send(
                    sites[GROUND],
                    MessageKind.RUN_SESSION,
                    encode_run_session(peers),
                    reply_kind=MessageKind.RUN_REPLY,
                    timeout=10.0,
                )
            ground_host.wait_crashed()
            # Survivors reap the dead ground on heartbeat age; the
            # STATUS barrier blocks until each reap actually happened.
            for name in HOMES:
                needs = name in NEED_REAP[(role, step)]
                status = _barrier(
                    transport.endpoint,
                    sites[name],
                    min_reaped=1 if needs else 0,
                )
                if needs:
                    assert status["orphans_reaped"] >= 1, (name, status)
                assert status["open_sessions"] == 0, (name, status)
                assert status["invariant_errors"] == 0, (name, status)
        else:
            # This test process is the ground; the victim home dies
            # mid-exchange and the session must abort, not hang.
            transport, runtime = make_space(
                sites[GROUND],
                method="lazy",
                registry=registry_pair,
                stats=stats,
                retry=PATIENT_RETRY,
                exchange_timeout=EXCHANGE_TIMEOUT,
                transport=carrier,
            )
            directory = DirectoryClient(transport.endpoint, "NS")
            _register(directory, transport)
            with pytest.raises(SessionAbortedError) as aborted:
                run_crash_session(runtime, peers)
            assert aborted.value.reason.startswith(
                "peer-unreachable:"
            ), aborted.value.reason
            victim_host = next(
                h for h in hosts if h.site_id == sites[victim]
            )
            victim_host.wait_crashed()
            assert not any(
                isinstance(state, SmartSessionState)
                for state in runtime._sessions.values()
            )
            survivor = "T" if victim == "H" else "H"
            status = _barrier(transport.endpoint, sites[survivor])
            assert status["open_sessions"] == 0, status
            assert status["invariant_errors"] == 0, status

        # Atomicity across the process boundary: each surviving home
        # heap is fully original or fully updated.
        for name in HOMES:
            if sites[name] == sites[victim]:
                continue
            checksum = _checksum(runtime, sites[name])
            if name in MARKED.get((role, step), set()):
                assert checksum == MARKED_SUM, (name, checksum)
            else:
                assert checksum == ORIGINAL_SUM, (name, checksum)

        save_trace(stats, tmp_path / "ground.jsonl")
        directory.deregister()
    finally:
        if transport is not None:
            transport.close()
        for spawned in hosts:
            if spawned.site_id == sites[victim]:
                continue
            if spawned.proc.poll() is None:
                spawned.shutdown(registry.addr)
                spawned.wait()
        for spawned in hosts:
            spawned.kill()

    # The merged survivor trace passes every conformance rule — the
    # victim's log died with it, like a real crashed process's would.
    traces = [
        path
        for path in (
            tmp_path / "ground.jsonl",
            tmp_path / "H.jsonl",
            tmp_path / "T.jsonl",
        )
        if path.exists()
    ]
    merged = tmp_path / "merged.jsonl"
    assert merge_trace_files(traces, merged) > 0
    collector = DiagnosticCollector()
    trace_rules.analyze_trace_file(merged, collector)
    assert collector.errors == [], [d.render() for d in collector.errors]
    # The coherency sanitizer on the same survivor timeline: the
    # aborted session's leftovers must read as crash semantics (which
    # the SRPC4xx rules scope out), never as a race.
    races = DiagnosticCollector()
    sanitizer.analyze_trace_file(merged, races)
    assert list(races) == [], [d.render() for d in races]
    export_trace(merged, f"crash_{carrier}_{role}_{step}")
