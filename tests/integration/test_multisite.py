"""Multi-site integration: chains, fan-out, mixed data homes."""

import pytest

from repro.rpc.interface import InterfaceDef, Param, ProcedureDef
from repro.rpc.stubgen import ClientStub, bind_server
from repro.workloads.traversal import TREE_OPS, bind_tree_server
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    local_tree_checksum,
)
from repro.xdr.types import PointerType, int32, int64


class TestDataFromTwoHomes:
    def test_callee_walks_trees_from_two_spaces(self, smart_pair):
        """B dereferences pointers whose homes are A and C in one call."""
        runtime_c = smart_pair.add_runtime("C")
        root_a = build_complete_tree(smart_pair.a, 7)
        root_c = build_complete_tree(runtime_c, 15)

        two = InterfaceDef("two", [
            ProcedureDef(
                "sum_both",
                [
                    Param("first", PointerType(TREE_NODE_TYPE_ID)),
                    Param("second", PointerType(TREE_NODE_TYPE_ID)),
                ],
                returns=int64,
            ),
        ])

        def sum_both(ctx, first, second):
            spec = ctx.runtime.resolver.resolve(TREE_NODE_TYPE_ID)

            def walk(address):
                if address == 0:
                    return 0
                view = ctx.struct_view(address, spec)
                return (
                    int.from_bytes(view.get("data"), "big")
                    + walk(view.get("left"))
                    + walk(view.get("right"))
                )

            return walk(first) + walk(second)

        bind_server(smart_pair.b, two, {"sum_both": sum_both})

        # A must pass a pointer to C's tree: it first obtains it as a
        # remote pointer through a call to C.
        expose = InterfaceDef("expose", [
            ProcedureDef(
                "root", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ])
        bind_server(runtime_c, expose, {"root": lambda ctx: root_c})
        expose_stub = ClientStub(smart_pair.a, expose, "C")
        two_stub = ClientStub(smart_pair.a, two, "B")
        with smart_pair.a.session() as session:
            c_pointer = expose_stub.root(session)
            total = two_stub.sum_both(session, root_a, c_pointer)
        assert total == sum(range(7)) + sum(range(15))

    def test_pointer_forwarded_through_intermediate_space(self,
                                                          smart_pair):
        """A -> B -> C: C dereferences a pointer to A's data that it
        received from B, never from A directly."""
        runtime_c = smart_pair.add_runtime("C")
        root = build_complete_tree(smart_pair.a, 15)
        bind_tree_server(runtime_c)

        relay = InterfaceDef("relay", [
            ProcedureDef(
                "forward",
                [Param("root", PointerType(TREE_NODE_TYPE_ID))],
                returns=int64,
            ),
        ])

        def forward(ctx, root_pointer):
            return ctx.call("C", "tree_ops.search", (root_pointer, 15))

        bind_server(smart_pair.b, relay, {"forward": forward})
        smart_pair.b.import_interface(TREE_OPS)
        stub = ClientStub(smart_pair.a, relay, "B")
        with smart_pair.a.session() as session:
            checksum = stub.forward(session, root)
        assert checksum == sum(range(15))


class TestSequentialSessions:
    def test_many_sessions_do_not_leak_state(self, smart_pair):
        root = build_complete_tree(smart_pair.a, 15)
        bind_tree_server(smart_pair.b)
        from repro.workloads.traversal import tree_client

        stub = tree_client(smart_pair.a, "B")
        for _ in range(5):
            with smart_pair.a.session() as session:
                stub.search_update(session, root, 15)
        # five sessions x one update each
        assert local_tree_checksum(smart_pair.a, root) == (
            sum(range(15)) + 5 * 15
        )
        # B holds no session state between sessions
        assert smart_pair.b._sessions == {}

    def test_concurrent_ground_sessions_isolated(self, smart_pair):
        """Two sessions from different grounds may be open at once (the
        single-active-thread rule is per session)."""
        runtime_c = smart_pair.add_runtime("C")
        root = build_complete_tree(smart_pair.a, 7)
        bind_tree_server(smart_pair.b)
        expose = InterfaceDef("expose", [
            ProcedureDef(
                "root", [], returns=PointerType(TREE_NODE_TYPE_ID)
            ),
        ])
        bind_server(smart_pair.a, expose, {"root": lambda ctx: root})
        from repro.workloads.traversal import tree_client

        stub_from_a = tree_client(smart_pair.a, "B")
        with smart_pair.a.session() as session_a:
            stub_from_a.search(session_a, root, 7)
            # C opens its own session while A's is still live.
            expose_stub = ClientStub(runtime_c, expose, "A")
            runtime_c.import_interface(TREE_OPS)
            with runtime_c.session() as session_c:
                pointer = expose_stub.root(session_c)
                checksum = runtime_c.call(
                    session_c, "B", "tree_ops.search", (pointer, 7)
                )
            assert checksum == sum(range(7))
            # A's session still works after C's ended.
            assert stub_from_a.search(session_a, root, 7) == sum(range(7))
