"""Cross-architecture integration: every pairing of machines works."""

import itertools

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.traversal import (
    bind_tree_server,
    expected_search_checksum,
    tree_client,
)
from repro.workloads.trees import build_complete_tree, register_tree_types
from repro.xdr.arch import ALPHA64, SPARC32, X86_64
from repro.xdr.registry import TypeRegistry

ARCHES = {"sparc32": SPARC32, "x86_64": X86_64, "alpha64": ALPHA64}
PAIRINGS = list(itertools.product(ARCHES, ARCHES))


@pytest.mark.parametrize(
    "caller_arch,callee_arch", PAIRINGS,
    ids=[f"{a}->{b}" for a, b in PAIRINGS],
)
def test_tree_search_across_architectures(caller_arch, callee_arch):
    network = Network()
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id, arch_name in (("A", caller_arch), ("B", callee_arch)):
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            ARCHES[arch_name],
            resolver=TypeResolver(site, "NS"),
        )
        register_tree_types(runtime)
        runtimes.append(runtime)
    caller, callee = runtimes
    root = build_complete_tree(caller, 31)
    bind_tree_server(callee)
    stub = tree_client(caller, "B")
    with caller.session() as session:
        assert stub.search(session, root, 31) == (
            expected_search_checksum(31, 31)
        )


@pytest.mark.parametrize(
    "caller_arch,callee_arch",
    [("sparc32", "x86_64"), ("x86_64", "sparc32"),
     ("alpha64", "sparc32")],
)
def test_updates_written_back_across_architectures(caller_arch,
                                                   callee_arch):
    network = Network()
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id, arch_name in (("A", caller_arch), ("B", callee_arch)):
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network,
            site,
            ARCHES[arch_name],
            resolver=TypeResolver(site, "NS"),
        )
        register_tree_types(runtime)
        runtimes.append(runtime)
    caller, callee = runtimes
    root = build_complete_tree(caller, 7)
    bind_tree_server(callee)
    stub = tree_client(caller, "B")
    with caller.session() as session:
        stub.search_update(session, root, 7)
    spec = caller.resolver.resolve("tree_node")
    layout = spec.layout(caller.arch)
    data = caller.space.read_raw(root + layout.offsets["data"], 8)
    assert int.from_bytes(data, "big") == 1  # 0 + 1, in caller layout
