"""The full smart stack over a lossy transport.

Retransmission must never duplicate protocol side effects: a re-sent
MEMORY_BATCH must not allocate twice, a re-sent WRITE_BACK must not
corrupt, a re-sent call must not re-run the procedure.  These tests
drive the side-effecting paths end-to-end under seeded loss.
"""

import pytest

from repro.namesvc.client import TypeResolver
from repro.namesvc.server import TypeNameServer
from repro.simnet.network import Network
from repro.smartrpc.runtime import SmartRpcRuntime
from repro.workloads.linked_list import (
    LIST_OPS,
    bind_list_server,
    build_list,
    list_client,
    read_list,
    register_list_types,
)
from repro.xdr.arch import SPARC32
from repro.xdr.registry import TypeRegistry


def lossy_pair(loss_rate, seed):
    network = Network(loss_rate=loss_rate, loss_seed=seed)
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    runtimes = []
    for site_id in ("A", "B"):
        site = network.add_site(site_id)
        runtime = SmartRpcRuntime(
            network, site, SPARC32, resolver=TypeResolver(site, "NS")
        )
        register_list_types(runtime)
        runtimes.append(runtime)
    caller, callee = runtimes
    bind_list_server(callee)
    caller.import_interface(LIST_OPS)
    return network, caller, callee


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
def test_remote_allocation_exactly_once_under_loss(seed):
    """Retransmitted memory batches must not double-allocate."""
    network, caller, callee = lossy_pair(0.2, seed)
    head = build_list(caller, [1])
    client = list_client(caller, "B")
    with caller.session() as session:
        client.append_range(session, head, 100, 5)
    assert read_list(caller, head) == [1, 100, 101, 102, 103, 104]
    # exactly 6 live list allocations in A's heap: no phantom nodes
    live = [
        allocation
        for allocation in caller.heap.live_allocations
        if allocation.type_id == "list_node"
    ]
    assert len(live) == 6


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_mutation_and_free_exactly_once_under_loss(seed):
    network, caller, callee = lossy_pair(0.2, seed)
    head = build_list(caller, [5, -1, 6, -2])
    client = list_client(caller, "B")
    with caller.session() as session:
        client.scale(session, head, 3)
        new_head = client.drop_negatives(session, head)
    assert read_list(caller, new_head) == [15, 18]
    live = [
        allocation
        for allocation in caller.heap.live_allocations
        if allocation.type_id == "list_node"
    ]
    assert len(live) == 2  # the two negatives were freed exactly once


@pytest.mark.parametrize("seed", [21, 22, 23])
def test_procedure_side_effects_exactly_once_under_loss(seed):
    """A re-sent call must not re-run the remote procedure body."""
    from repro.rpc.interface import InterfaceDef, ProcedureDef
    from repro.rpc.stubgen import ClientStub, bind_server
    from repro.xdr.types import int32

    network, caller, callee = lossy_pair(0.3, seed)
    executions = []
    counter = InterfaceDef("counter", [
        ProcedureDef("tick", [], returns=int32),
    ])

    def tick(ctx):
        executions.append(1)
        return len(executions)

    bind_server(callee, counter, {"tick": tick})
    stub = ClientStub(caller, counter, "B")
    with caller.session() as session:
        results = [stub.tick(session) for _ in range(10)]
    assert results == list(range(1, 11))
    assert len(executions) == 10
