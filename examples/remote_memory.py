#!/usr/bin/env python
"""Remote memory management: extended_malloc / extended_free.

Site B extends a list that lives on site A by allocating nodes *in A's
address space* — without one network message per allocation: the
runtime batches the operations and flushes them when control returns
to A.  B then prunes the list, releasing remote memory with
``extended_free``.

Run::

    python examples/remote_memory.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import ClientStub
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.linked_list import (
    LIST_OPS,
    LIST_NODE_TYPE_ID,
    bind_list_server,
    build_list,
    list_node_spec,
    read_list,
)
from repro.xdr import SPARC32
from repro.xdr.registry import TypeRegistry


def main() -> None:
    network = Network()
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(LIST_NODE_TYPE_ID, list_node_spec())
    site_a = network.add_site("A")
    site_b = network.add_site("B")
    machine_a = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    machine_b = SmartRpcRuntime(
        network, site_b, SPARC32, resolver=TypeResolver(site_b, "NS")
    )
    bind_list_server(machine_b)
    machine_a.import_interface(LIST_OPS)

    head = build_list(machine_a, [10, -3, 20, -7])
    print("A's list:", read_list(machine_a, head))

    client = ClientStub(machine_a, LIST_OPS, "B")
    with machine_a.session() as session:
        appended = client.append_range(session, head, 100, 5)
        print(f"B appended {appended} nodes into A's heap "
              "(allocations batched into one message)")
        new_head = client.drop_negatives(session, head)
        print("B pruned negative nodes with extended_free")
    print("A's list after the session:", read_list(machine_a, new_head))
    print()
    print(network.stats.summary())


if __name__ == "__main__":
    main()
