#!/usr/bin/env python
"""Heterogeneity: the same logical data on three unlike machines.

The system shares only the *logical type* of data — never its memory
representation.  Here a big-endian 32-bit SPARC, a little-endian 64-bit
x86-64 and a second 64-bit machine pass the same records around: each
lays the struct out natively (different sizes, offsets and byte
orders), and the canonical XDR form bridges them, pointers included.

This is what heterogeneous DSM systems like Mermaid could not do — they
required every machine to agree on alignment and record format (paper
section 5.2).

Run::

    python examples/heterogeneous.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import ClientStub, InterfaceDef, Param, ProcedureDef, bind_server
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.xdr import (
    ALPHA64,
    SPARC32,
    X86_64,
    Field,
    OpaqueType,
    PointerType,
    StructType,
    float64,
    int16,
    int32,
)
from repro.xdr.registry import TypeRegistry

SENSOR_TYPE_ID = "sensor_sample"


def sensor_spec() -> StructType:
    """A struct whose layout genuinely differs across machines."""
    return StructType(
        SENSOR_TYPE_ID,
        [
            Field("sequence", int16),        # forces padding differences
            Field("reading", float64),
            Field("flags", int32),
            Field("label", OpaqueType(6)),
            Field("next", PointerType(SENSOR_TYPE_ID)),
        ],
    )


def main() -> None:
    network = Network()
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(SENSOR_TYPE_ID, sensor_spec())

    machines = {}
    for site_id, arch in (("sparc", SPARC32), ("x86", X86_64),
                          ("alpha", ALPHA64)):
        site = network.add_site(site_id)
        machines[site_id] = SmartRpcRuntime(
            network, site, arch, resolver=TypeResolver(site, "NS")
        )

    spec = sensor_spec()
    print("native layouts of the same logical struct:")
    for site_id, machine in machines.items():
        layout = spec.layout(machine.arch)
        print(
            f"  {site_id:6s} ({machine.arch.name:8s}): "
            f"{layout.size:2d} bytes, offsets {layout.offsets}"
        )

    # Build a two-sample chain on the SPARC.
    sparc = machines["sparc"]
    first = sparc.malloc(SENSOR_TYPE_ID)
    second = sparc.malloc(SENSOR_TYPE_ID)
    view = sparc.struct_view(first, spec)
    view.set("sequence", 7)
    view.set("reading", 36.6)
    view.set("flags", 0b1010)
    view.set("label", b"probe1")
    view.set("next", second)
    tail = sparc.struct_view(second, spec)
    tail.set("sequence", 8)
    tail.set("reading", -12.25)
    tail.set("flags", 0)
    tail.set("label", b"probe2")
    tail.set("next", 0)

    interface = InterfaceDef(
        "sensors",
        [
            ProcedureDef(
                "mean_reading",
                [Param("head", PointerType(SENSOR_TYPE_ID))],
                returns=float64,
            )
        ],
    )

    def mean_reading(ctx, head: int) -> float:
        """Walks a chain whose home is another architecture."""
        total = 0.0
        count = 0
        address = head
        while address != 0:
            sample = ctx.struct_view(
                address, ctx.runtime.resolver.resolve(SENSOR_TYPE_ID)
            )
            total += sample.get("reading")
            count += 1
            address = sample.get("next")
        return total / count if count else 0.0

    # The x86 machine serves the procedure; the chain's home is the
    # SPARC, so records cross byte order AND pointer width on the way.
    bind_server(machines["x86"], interface, {"mean_reading": mean_reading})
    stub = ClientStub(sparc, interface, "x86")
    with sparc.session() as session:
        mean = stub.mean_reading(session, first)
    print(f"\nx86 computed the mean of SPARC-resident samples: {mean}")
    assert abs(mean - (36.6 - 12.25) / 2) < 1e-9
    print("representations converted through the canonical form: OK")


if __name__ == "__main__":
    main()
