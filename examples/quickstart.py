#!/usr/bin/env python
"""Quickstart: pass a pointer to a remote procedure, transparently.

Two simulated machines share nothing but a network.  Site A builds a
linked list in its own heap and calls a procedure on site B, passing a
*pointer* to the list head — the thing conventional RPC forbids.  B
walks and mutates the list through plain struct views; the smart RPC
runtime faults the data across, caches it, tracks B's writes, and
writes them back to A's memory, where they are visible after the call.

Run::

    python examples/quickstart.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import InterfaceDef, Param, ProcedureDef, ClientStub, bind_server
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.linked_list import (
    LIST_NODE_TYPE_ID,
    build_list,
    list_node_spec,
    read_list,
)
from repro.xdr import SPARC32, X86_64, PointerType, int32, int64
from repro.xdr.registry import TypeRegistry


def main() -> None:
    # One simulated network; a type name server; two machines with
    # *different* architectures (byte order and pointer width differ).
    network = Network()
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(LIST_NODE_TYPE_ID, list_node_spec())

    site_a = network.add_site("A")
    site_b = network.add_site("B")
    machine_a = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    machine_b = SmartRpcRuntime(
        network, site_b, X86_64, resolver=TypeResolver(site_b, "NS")
    )

    # A builds ordinary local data: a linked list in its heap.
    head = build_list(machine_a, [3, 1, 4, 1, 5, 9, 2, 6])
    print("A's list:", read_list(machine_a, head))

    # The remote interface takes a *pointer* parameter.
    interface = InterfaceDef(
        "quickstart",
        [
            ProcedureDef(
                "sum_and_double",
                [Param("head", PointerType(LIST_NODE_TYPE_ID))],
                returns=int64,
            )
        ],
    )

    def sum_and_double(ctx, head_pointer: int) -> int:
        """Runs on B.  Sees A's list through an ordinary pointer."""
        spec = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
        total = 0
        address = head_pointer
        while address != 0:
            node = ctx.struct_view(address, spec)
            value = node.get("value")
            total += value
            node.set("value", value * 2)  # a write: tracked, written back
            address = node.get("next")
        return total

    bind_server(machine_b, interface, {"sum_and_double": sum_and_double})
    stub = ClientStub(machine_a, interface, "B")

    with machine_a.session() as session:
        total = stub.sum_and_double(session, head)

    print("B computed sum:", total)
    print("A's list after the call:", read_list(machine_a, head))
    print()
    print("what the runtime did:")
    print(network.stats.summary())
    print(f"simulated time: {network.clock.now * 1000:.2f} ms")


if __name__ == "__main__":
    main()
