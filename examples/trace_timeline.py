#!/usr/bin/env python
"""Watch the protocol work: a traced (and slightly lossy) session.

Tracing timestamps every message; this example runs one small remote
tree search over a network that drops 10% of messages and prints the
full timeline — calls, data requests with their eager closures,
retransmission timeouts, write-backs and the final invalidation
multicast.

Run::

    python examples/trace_timeline.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.simnet import Network, StatsCollector
from repro.simnet.tracefmt import format_timeline, summarize_trace
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.traversal import bind_tree_server, tree_client
from repro.workloads.trees import (
    TREE_NODE_TYPE_ID,
    build_complete_tree,
    tree_node_spec,
)
from repro.xdr import SPARC32
from repro.xdr.registry import TypeRegistry


def main() -> None:
    network = Network(
        stats=StatsCollector(trace=True),
        loss_rate=0.10,
        loss_seed=2026,
    )
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(TREE_NODE_TYPE_ID, tree_node_spec())
    site_a, site_b = network.add_site("A"), network.add_site("B")
    machine_a = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS"),
        closure_size=256,
    )
    machine_b = SmartRpcRuntime(
        network, site_b, SPARC32, resolver=TypeResolver(site_b, "NS"),
        closure_size=256,
    )
    root = build_complete_tree(machine_a, 63)
    bind_tree_server(machine_b)
    stub = tree_client(machine_a, "B")

    with machine_a.session() as session:
        checksum = stub.search_update(session, root, 20)
    print(f"remote search+update of 20 nodes -> checksum {checksum}")
    print()
    print(format_timeline(network.stats.events, limit=60))
    print()
    print(summarize_trace(network.stats))


if __name__ == "__main__":
    main()
