#!/usr/bin/env python
"""The rpcgen pipeline: IDL file -> types + stubs -> remote calls.

``examples/interfaces/inventory.x`` declares an inventory service in
the textual IDL: an enum, two pointer-linked structs and an interface.
This example loads it, registers the declared types with both
machines, binds a server implementation against the parsed interface,
and drives it through a generated stub — with pointers and enums
crossing the wire.

Run::

    python examples/idl_pipeline.py
"""

import pathlib

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import ClientStub, bind_server
from repro.rpc.idl import load_idl
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.xdr import SPARC32, X86_64
from repro.xdr.registry import TypeRegistry

IDL_PATH = pathlib.Path(__file__).parent / "interfaces" / "inventory.x"


def main() -> None:
    document = load_idl(IDL_PATH)
    item = document.struct("item")
    shelf = document.struct("shelf")
    status = document.enum("status")
    interface = document.interface("inventory")
    print(f"parsed {IDL_PATH.name}: "
          f"{len(document.structs)} structs, "
          f"{len(document.enums)} enums, "
          f"{len(document.interfaces)} interfaces")
    print(f"item is {item.sizeof(SPARC32)} bytes on sparc32, "
          f"{item.sizeof(X86_64)} on x86_64")

    network = Network()
    TypeNameServer(network.add_site("NS"), TypeRegistry())
    site_a, site_b = network.add_site("A"), network.add_site("B")
    warehouse = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    terminal = SmartRpcRuntime(
        network, site_b, X86_64, resolver=TypeResolver(site_b, "NS")
    )
    for runtime in (warehouse, terminal):
        document.register_types(runtime.resolver)
    warehouse.import_interface(interface)

    # Build a shelf with three items in the warehouse's heap.
    layout = item.layout(warehouse.arch)
    shelf_address = warehouse.malloc("shelf")
    shelf_view = warehouse.struct_view(shelf_address, shelf)
    shelf_view.set("capacity", 100)
    head = 0
    for sku, count, availability, label in (
        (1001, 4, "IN_STOCK", b"wrench      "),
        (1002, 0, "BACK_ORDER", b"torque bar  "),
        (1003, 9, "IN_STOCK", b"hex key set "),
    ):
        address = warehouse.malloc("item")
        view = warehouse.struct_view(address, item)
        view.set("next", head)
        view.set("sku", sku)
        view.set("count", count)
        view.set("availability", availability)
        view.set("label", label)
        head = address
    shelf_view.set("head", head)

    # Server implementation on the terminal machine, against the
    # parsed interface.
    def walk(ctx, shelf_pointer):
        view = ctx.struct_view(shelf_pointer, shelf)
        address = view.get("head")
        while address != 0:
            entry = ctx.struct_view(address, item)
            yield entry
            address = entry.get("next")

    def total_count(ctx, shelf_pointer):
        return sum(entry.get("count") for entry in walk(ctx, shelf_pointer))

    def restock(ctx, shelf_pointer, sku, amount):
        for entry in walk(ctx, shelf_pointer):
            if entry.get("sku") == sku:
                entry.set("count", entry.get("count") + amount)
                if entry.get("count") > 0:
                    entry.set("availability", "IN_STOCK")
                return entry.get("count")
        return -1

    def availability_of(ctx, shelf_pointer, sku):
        for entry in walk(ctx, shelf_pointer):
            if entry.get("sku") == sku:
                return entry.get("availability")
        return status.value_of("DISCONTINUED")

    bind_server(terminal, interface, {
        "total_count": total_count,
        "restock": restock,
        "availability_of": availability_of,
    })
    stub = ClientStub(warehouse, interface, "B")

    with warehouse.session() as session:
        print("total on shelf:", stub.total_count(session, shelf_address))
        print("sku 1002 availability:",
              stub.availability_of(session, shelf_address, 1002))
        print("restocking sku 1002 by 6 ->",
              stub.restock(session, shelf_address, 1002, 6))
        print("sku 1002 availability now:",
              stub.availability_of(session, shelf_address, 1002))
    # After the session, the warehouse's own memory reflects the
    # terminal's restock.
    first_item = warehouse.struct_view(shelf_view.get("head"), item)
    print("warehouse heap agrees: first item count =",
          first_item.get("count"))


if __name__ == "__main__":
    main()
