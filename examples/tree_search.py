#!/usr/bin/env python
"""The paper's headline experiment, in miniature.

A complete binary tree lives on site A; site B searches a varying
fraction of it remotely.  The same search body runs under all three
transfer policies — fully eager (deep copy up front), fully lazy
(callback per dereference), and the paper's proposed method (fault-
driven transfer with an eager closure and caching) — and the printed
table is a small-scale Figure 4.

Run::

    python examples/tree_search.py
"""

from repro.bench.harness import METHODS, make_world, run_tree_call
from repro.bench.reporting import format_table

NUM_NODES = 8191
RATIOS = [0.0, 0.25, 0.5, 0.75, 1.0]


def main() -> None:
    rows = []
    for ratio in RATIOS:
        cells = [ratio]
        for method in METHODS:
            world = make_world(method)
            run = run_tree_call(world, NUM_NODES, "search", ratio=ratio)
            cells.append(run.seconds)
        rows.append(tuple(cells))
    print(
        format_table(
            f"Remote tree search, {NUM_NODES} nodes "
            "(simulated seconds per call)",
            ["access ratio", "fully eager", "fully lazy", "proposed"],
            rows,
        )
    )
    print()
    print("The eager method pays the whole tree regardless of the ratio;")
    print("the lazy method pays one round trip per node; the proposed")
    print("method pays only for what the search touches, a page at a")
    print("time, with an 8 KB closure prefetched per fault.")


if __name__ == "__main__":
    main()
