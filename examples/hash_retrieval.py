#!/usr/bin/env python
"""Hash-table retrieval: the workload where laziness wins.

The paper notes that the fully lazy method "is expected to show good
performance when a small portion of the large data is accessed (for
example, retrieval of a hash table)."  Here site A holds a 4,000-entry
hash table and site B looks up a handful of keys: the eager method
ships the whole table for every call, while the lazy and proposed
methods touch one bucket chain per lookup.

Run::

    python examples/hash_retrieval.py
"""

from repro.bench.harness import METHODS, NAME_SERVER, make_world
from repro.bench.reporting import format_table
from repro.simnet.clock import Stopwatch
from repro.workloads.hashtable import build_hash_table, hash_client

NUM_KEYS = 4000
LOOKUPS = 8


def main() -> None:
    rows = []
    for method in METHODS:
        world = make_world(method)
        table, _ = build_hash_table(world.caller, list(range(NUM_KEYS)))
        client = hash_client(world.caller, "B")
        world.stats.reset()
        watch = Stopwatch(world.network.clock)
        with world.caller.session() as session:
            found = client.lookup_many(session, table, 100, LOOKUPS)
        rows.append(
            (
                method,
                watch.elapsed,
                world.stats.callbacks,
                world.stats.total_bytes,
            )
        )
        expected = sum(
            (key * key) % (1 << 64) for key in range(100, 100 + LOOKUPS)
        )
        assert found == expected, (found, expected)
    print(
        format_table(
            f"{LOOKUPS} remote lookups in a {NUM_KEYS}-entry hash table",
            ["method", "sim seconds", "callbacks", "bytes moved"],
            rows,
        )
    )
    print()
    print("Access is sparse, so the transfer-everything eager method")
    print("moves the whole table; the lazy and proposed methods move a")
    print("few bucket chains.")


if __name__ == "__main__":
    main()
