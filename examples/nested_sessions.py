#!/usr/bin/env python
"""Nested RPCs, callbacks, and the travelling modified data set.

The paper's execution model allows nesting (A calls B, B calls C) and
callbacks (the callee calls its caller back), with exactly one active
thread per session.  The coherency protocol ships all dirty cached
data whenever thread activity crosses address spaces, so when C reads
data that B modified, C sees B's values even though the data's home is
A and A has not been involved since.

This example reproduces the paper's Figure 1 scenario:

* a ground thread on A starts a session and calls B, passing a pointer
  to a counter record in A's heap;
* B increments the counter (a cached write on B), then calls C with
  the same pointer;
* C reads the counter — the dirty value arrived piggybacked on B's
  call — increments it again, and calls *back* to A (a callback),
  which reads its own original memory and reports what it sees there;
* everything unwinds, and A's memory holds the final count.

Run::

    python examples/nested_sessions.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import ClientStub, InterfaceDef, Param, ProcedureDef, bind_server
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.xdr import SPARC32, Field, PointerType, StructType, int32
from repro.xdr.registry import TypeRegistry

COUNTER_TYPE_ID = "counter"
counter_spec = StructType(COUNTER_TYPE_ID, [Field("count", int32)])

INTERFACE = InterfaceDef(
    "relay",
    [
        ProcedureDef(
            "bump_on_b",
            [Param("counter", PointerType(COUNTER_TYPE_ID))],
            returns=int32,
        ),
        ProcedureDef(
            "bump_on_c",
            [Param("counter", PointerType(COUNTER_TYPE_ID))],
            returns=int32,
        ),
        ProcedureDef(
            "peek_on_a",
            [Param("counter", PointerType(COUNTER_TYPE_ID))],
            returns=int32,
        ),
    ],
)


def main() -> None:
    network = Network()
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(COUNTER_TYPE_ID, counter_spec)
    runtimes = {}
    for site_id in ("A", "B", "C"):
        site = network.add_site(site_id)
        runtimes[site_id] = SmartRpcRuntime(
            network, site, SPARC32, resolver=TypeResolver(site, "NS")
        )

    def bump_on_b(ctx, counter: int) -> int:
        view = ctx.struct_view(counter, counter_spec)
        view.set("count", view.get("count") + 1)  # dirty write on B
        print(f"  B sees count={view.get('count')} after its increment")
        # Nested call: B -> C, same pointer; B's dirty data travels too.
        return ctx.call("C", "relay.bump_on_c", (counter,))

    def bump_on_c(ctx, counter: int) -> int:
        view = ctx.struct_view(counter, counter_spec)
        seen = view.get("count")
        print(f"  C sees count={seen} (B's modification arrived with "
              "the call)")
        view.set("count", seen + 1)
        # Callback: C -> A, the ground site itself.
        return ctx.call("A", "relay.peek_on_a", (counter,))

    def peek_on_a(ctx, counter: int) -> int:
        # A is the counter's home: the swizzled pointer IS the original
        # address, and the piggybacked dirty data updated it in place.
        view = ctx.struct_view(counter, counter_spec)
        print(f"  A (via callback) sees count={view.get('count')} in its "
              "own heap")
        return view.get("count")

    implementations = {
        "bump_on_b": bump_on_b,
        "bump_on_c": bump_on_c,
        "peek_on_a": peek_on_a,
    }
    for runtime in runtimes.values():
        bind_server(runtime, INTERFACE, dict(implementations))

    machine_a = runtimes["A"]
    counter = machine_a.malloc(COUNTER_TYPE_ID)
    machine_a.struct_view(counter, counter_spec).set("count", 0)

    stub = ClientStub(machine_a, INTERFACE, "B")
    print("A starts a session and calls B with a pointer to count=0")
    with machine_a.session() as session:
        final = stub.bump_on_b(session, counter)
    print(f"returned value: {final}")
    home_value = machine_a.struct_view(counter, counter_spec).get("count")
    print(f"A's heap after the session: count={home_value}")
    assert final == 2 and home_value == 2


if __name__ == "__main__":
    main()
