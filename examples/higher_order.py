#!/usr/bin/env python
"""Higher-order RPC: passing functions alongside remote pointers.

The paper's conclusion names its one remaining limitation — no remote
pointers to functions — and points at Ohori & Kato's higher-order stub
method as the complement ("their method and the method proposed in
this paper do not conflict").  This example shows the composition this
library implements: a remote procedure receives *both* a pointer to
the caller's data and a reference to a caller-side function, walks the
data transparently, and applies the function through the same session.

Run::

    python examples/higher_order.py
"""

from repro.namesvc import TypeNameServer, TypeResolver
from repro.rpc import ClientStub, InterfaceDef, Param, ProcedureDef, bind_server
from repro.rpc.funcref import FuncRefType, invoke
from repro.simnet import Network
from repro.smartrpc import SmartRpcRuntime
from repro.workloads.linked_list import (
    LIST_NODE_TYPE_ID,
    build_list,
    list_node_spec,
    read_list,
)
from repro.xdr import SPARC32, X86_64, PointerType, int32
from repro.xdr.registry import TypeRegistry

MAPPER = ProcedureDef("mapper", [Param("x", int32)], returns=int32)

CALLER_FUNCS = InterfaceDef("caller_funcs", [
    ProcedureDef("celsius_to_fahrenheit", [Param("x", int32)],
                 returns=int32),
    ProcedureDef("clamp_positive", [Param("x", int32)], returns=int32),
])

MAP_SERVICE = InterfaceDef("map_service", [
    ProcedureDef(
        "map_in_place",
        [
            Param("head", PointerType(LIST_NODE_TYPE_ID)),
            Param("f", FuncRefType(MAPPER)),
        ],
        returns=int32,
    ),
])


def map_in_place(ctx, head, f):
    """Runs on B: maps a caller function over caller data."""
    spec = ctx.runtime.resolver.resolve(LIST_NODE_TYPE_ID)
    count = 0
    address = head
    while address != 0:
        node = ctx.struct_view(address, spec)
        node.set("value", invoke(ctx, f, (node.get("value"),)))
        count += 1
        address = node.get("next")
    return count


def main() -> None:
    network = Network()
    name_server = TypeNameServer(network.add_site("NS"), TypeRegistry())
    name_server.publish(LIST_NODE_TYPE_ID, list_node_spec())
    site_a, site_b = network.add_site("A"), network.add_site("B")
    machine_a = SmartRpcRuntime(
        network, site_a, SPARC32, resolver=TypeResolver(site_a, "NS")
    )
    machine_b = SmartRpcRuntime(
        network, site_b, X86_64, resolver=TypeResolver(site_b, "NS")
    )

    bind_server(machine_a, CALLER_FUNCS, {
        "celsius_to_fahrenheit": lambda ctx, x: x * 9 // 5 + 32,
        "clamp_positive": lambda ctx, x: max(0, x),
    })
    bind_server(machine_b, MAP_SERVICE, {"map_in_place": map_in_place})
    stub = ClientStub(machine_a, MAP_SERVICE, "B")

    temperatures = build_list(machine_a, [-10, 0, 21, 100])
    print("A's readings (deg C):", read_list(machine_a, temperatures))

    with machine_a.session() as session:
        stub.map_in_place(
            session,
            temperatures,
            machine_a.func_ref(CALLER_FUNCS, "celsius_to_fahrenheit"),
        )
    print("after remote map with A's converter (deg F):",
          read_list(machine_a, temperatures))

    with machine_a.session() as session:
        stub.map_in_place(
            session,
            temperatures,
            machine_a.func_ref(CALLER_FUNCS, "clamp_positive"),
        )
    print("after remote map with A's clamp:",
          read_list(machine_a, temperatures))
    print()
    print(network.stats.summary())


if __name__ == "__main__":
    main()
